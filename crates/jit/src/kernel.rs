//! Safe wrappers around compiled kernels.
//!
//! A [`CompiledKernel`] owns the executable code for one [`ScanSig`] and
//! exposes a validated, safe `run` API: it checks the column count, types
//! and lengths against the signature, allocates the position buffer with
//! the slack the vector stores need, and (for the AVX-512 backend)
//! evaluates the non-multiple-of-16 tail rows after the kernel's drain so
//! emitted positions stay ascending.

use std::time::{Duration, Instant};

use fts_core::{OutputMode, ScanOutput};
use fts_simd::has_avx512;
use fts_storage::{NativeType, PosList};

use crate::compile_avx512::compile_avx512;
use crate::compile_scalar::compile_scalar;
use crate::ir::{JitElem, JitError, KernelArgs, KernelFn, ScanSig};
use crate::mem::ExecBuf;

/// Which code generator produced a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JitBackend {
    /// Specialized tuple-at-a-time loop (§II's code with immediates).
    Scalar,
    /// The fused AVX-512 scan of Fig. 3.
    Avx512,
}

/// Element types a kernel can run over.
pub trait JitRunElem: NativeType {
    /// The IR-level element kind.
    const ELEM: JitElem;

    /// Reconstruct a value from its lane bits.
    fn from_bits(bits: u64) -> Self;
}

impl JitRunElem for u32 {
    const ELEM: JitElem = JitElem::U32;
    fn from_bits(bits: u64) -> Self {
        bits as u32
    }
}

impl JitRunElem for i32 {
    const ELEM: JitElem = JitElem::I32;
    fn from_bits(bits: u64) -> Self {
        bits as u32 as i32
    }
}

impl JitRunElem for f32 {
    const ELEM: JitElem = JitElem::F32;
    fn from_bits(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl JitRunElem for u64 {
    const ELEM: JitElem = JitElem::U64;
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl JitRunElem for i64 {
    const ELEM: JitElem = JitElem::I64;
    fn from_bits(bits: u64) -> Self {
        bits as i64
    }
}

impl JitRunElem for f64 {
    const ELEM: JitElem = JitElem::F64;
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

/// Errors when running a compiled kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// Number of columns differs from the signature's predicate count.
    ColumnCountMismatch {
        /// Predicates in the signature.
        expected: usize,
        /// Columns passed.
        got: usize,
    },
    /// The element type differs from the signature's.
    ElemMismatch,
    /// Columns have different lengths.
    LengthMismatch,
    /// More rows than a 32-bit gather index can address.
    TooManyRows(usize),
    /// The kernel was compiled in count mode but positions were requested
    /// (or vice versa — the signature fixes the output mode).
    ModeMismatch,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::ColumnCountMismatch { expected, got } => {
                write!(f, "signature has {expected} predicates, got {got} columns")
            }
            RunError::ElemMismatch => write!(f, "element type mismatch"),
            RunError::LengthMismatch => write!(f, "columns have different lengths"),
            RunError::TooManyRows(n) => write!(f, "{n} rows exceed 32-bit index range"),
            RunError::ModeMismatch => write!(f, "kernel compiled for the other output mode"),
        }
    }
}

impl std::error::Error for RunError {}

/// One JIT-compiled scan kernel, ready to execute.
///
/// ```
/// use fts_jit::{CompiledKernel, JitBackend, ScanSig};
/// use fts_storage::CmpOp;
///
/// // Specialize §II's loop for `a = 5 AND b = 1` (needles become
/// // immediates in the emitted machine code).
/// let sig = ScanSig::u32_chain(&[(CmpOp::Eq, 5), (CmpOp::Eq, 1)], false);
/// let kernel = CompiledKernel::compile(sig, JitBackend::Scalar).unwrap();
/// let a: Vec<u32> = (0..100).map(|i| i % 10).collect();
/// let b: Vec<u32> = (0..100).map(|i| i % 4).collect();
/// assert_eq!(kernel.run(&[&a[..], &b[..]]).unwrap().count(), 5);
/// ```
pub struct CompiledKernel {
    sig: ScanSig,
    backend: JitBackend,
    buf: ExecBuf,
    compile_time: Duration,
}

impl CompiledKernel {
    /// Generate and map the code for `sig` with the chosen backend.
    ///
    /// The AVX-512 backend refuses to compile on hosts without AVX-512, so
    /// a successfully compiled kernel is always runnable.
    pub fn compile(sig: ScanSig, backend: JitBackend) -> Result<CompiledKernel, JitError> {
        let start = Instant::now();
        let code = match backend {
            JitBackend::Scalar => compile_scalar(&sig)?,
            JitBackend::Avx512 => {
                if !has_avx512() {
                    return Err(JitError::IsaUnavailable);
                }
                compile_avx512(&sig)?
            }
        };
        let buf = ExecBuf::new(&code)?;
        Ok(CompiledKernel {
            sig,
            backend,
            buf,
            compile_time: start.elapsed(),
        })
    }

    /// The signature the kernel was specialized for.
    pub fn sig(&self) -> &ScanSig {
        &self.sig
    }

    /// Which backend emitted the code.
    pub fn backend(&self) -> JitBackend {
        self.backend
    }

    /// Code generation + mapping time (the cost the kernel cache amortizes).
    pub fn compile_time(&self) -> Duration {
        self.compile_time
    }

    /// The machine code (for disassembly, e.g. the `jit_explorer` example).
    pub fn machine_code(&self) -> &[u8] {
        self.buf.code()
    }

    /// Disassemble the kernel with binutils `objdump`, if installed.
    /// Returns Intel-syntax assembly, one instruction per line.
    pub fn disassemble(&self) -> Option<String> {
        use std::io::Write as _;
        let path = std::env::temp_dir().join(format!(
            "fts-jit-disasm-{}-{:p}.bin",
            std::process::id(),
            self.buf.code()
        ));
        let mut f = std::fs::File::create(&path).ok()?;
        f.write_all(self.buf.code()).ok()?;
        drop(f);
        let out = std::process::Command::new("objdump")
            .args(["-D", "-b", "binary", "-m", "i386:x86-64", "-M", "intel"])
            .arg(&path)
            .output();
        let _ = std::fs::remove_file(&path);
        let out = out.ok()?;
        if !out.status.success() {
            return None;
        }
        let text = String::from_utf8_lossy(&out.stdout);
        let body: Vec<&str> = text
            .lines()
            .skip_while(|l| !l.contains("<.data>:"))
            .skip(1)
            .collect();
        Some(body.join("\n"))
    }

    /// Execute the kernel over `cols`. The output mode is fixed by the
    /// signature (`emit_positions`).
    pub fn run<T: JitRunElem>(&self, cols: &[&[T]]) -> Result<ScanOutput, RunError> {
        if T::ELEM != self.sig.elem {
            return Err(RunError::ElemMismatch);
        }
        if cols.len() != self.sig.len() {
            return Err(RunError::ColumnCountMismatch {
                expected: self.sig.len(),
                got: cols.len(),
            });
        }
        let rows = cols[0].len();
        if cols.iter().any(|c| c.len() != rows) {
            return Err(RunError::LengthMismatch);
        }
        if rows > i32::MAX as usize {
            return Err(RunError::TooManyRows(rows));
        }

        // The AVX-512 kernel consumes whole blocks (16 rows for 32-bit
        // elements, 8 for 64-bit); the scalar kernel consumes every row.
        let rows_kernel = match self.backend {
            JitBackend::Scalar => rows,
            JitBackend::Avx512 => {
                let lanes = self.sig.elem.lanes();
                rows / lanes * lanes
            }
        };

        let mut out: Vec<u32> = if self.sig.emit_positions {
            // Slack for the full-register position stores.
            vec![0; rows_kernel + 16]
        } else {
            Vec::new()
        };
        let mut args = KernelArgs {
            cols: [std::ptr::null(); 8],
            rows: rows_kernel as u64,
            out: if self.sig.emit_positions {
                out.as_mut_ptr()
            } else {
                std::ptr::null_mut()
            },
        };
        for (i, c) in cols.iter().enumerate() {
            args.cols[i] = c.as_ptr() as *const u8;
        }
        // SAFETY: the code was generated for exactly this signature; the
        // columns were validated above; `out` has the required slack; the
        // AVX-512 backend verified ISA support at compile time.
        let f: KernelFn = unsafe { std::mem::transmute(self.buf.entry()) };
        // SAFETY: see above.
        let mut count = unsafe { f(&args) };
        out.truncate(count as usize);

        // Tail rows (AVX-512 backend only): evaluated after the kernel's
        // drain, so appended positions remain ascending.
        for row in rows_kernel..rows {
            let hit = self
                .sig
                .preds
                .iter()
                .zip(cols)
                .all(|(p, c)| c[row].cmp_op(p.op, T::from_bits(p.needle_bits)));
            if hit {
                count += 1;
                if self.sig.emit_positions {
                    out.push(row as u32);
                }
            }
        }

        Ok(if self.sig.emit_positions {
            ScanOutput::Positions(PosList::from_vec(out))
        } else {
            ScanOutput::Count(count)
        })
    }

    /// Convenience: run and coerce into the requested [`OutputMode`]
    /// (positions kernels can serve count queries; not vice versa).
    pub fn run_mode<T: JitRunElem>(
        &self,
        cols: &[&[T]],
        mode: OutputMode,
    ) -> Result<ScanOutput, RunError> {
        let out = self.run(cols)?;
        match (mode, out) {
            (OutputMode::Count, o) => Ok(ScanOutput::Count(o.count())),
            (OutputMode::Positions, o @ ScanOutput::Positions(_)) => Ok(o),
            (OutputMode::Positions, ScanOutput::Count(_)) => Err(RunError::ModeMismatch),
        }
    }
}

impl std::fmt::Debug for CompiledKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CompiledKernel({:?}, {} preds, {} bytes, compiled in {:?})",
            self.backend,
            self.sig.len(),
            self.buf.code_len(),
            self.compile_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_storage::CmpOp;

    #[test]
    fn scalar_backend_end_to_end() {
        let a: Vec<u32> = (0..1003).map(|i| i % 10).collect();
        let b: Vec<u32> = (0..1003).map(|i| i % 4).collect();
        let sig = ScanSig::u32_chain(&[(CmpOp::Eq, 5), (CmpOp::Eq, 2)], true);
        let k = CompiledKernel::compile(sig, JitBackend::Scalar).unwrap();
        let out = k.run(&[&a[..], &b[..]]).unwrap();
        let expected: Vec<u32> = (0..1003u32)
            .filter(|&i| a[i as usize] == 5 && b[i as usize] == 2)
            .collect();
        assert_eq!(out.positions().unwrap().as_slice(), &expected[..]);
        assert!(k.compile_time() < Duration::from_secs(1));
        assert!(!k.machine_code().is_empty());
    }

    #[test]
    fn avx512_backend_handles_tails() {
        if !has_avx512() {
            eprintln!("skipping: no AVX-512");
            return;
        }
        for rows in [0usize, 1, 15, 16, 17, 1003] {
            let a: Vec<u32> = (0..rows as u32).map(|i| i % 3).collect();
            let b: Vec<u32> = (0..rows as u32).map(|i| i % 2).collect();
            let sig = ScanSig::u32_chain(&[(CmpOp::Eq, 0), (CmpOp::Eq, 1)], true);
            let k = CompiledKernel::compile(sig, JitBackend::Avx512).unwrap();
            let out = k.run(&[&a[..], &b[..]]).unwrap();
            let expected: Vec<u32> = (0..rows as u32)
                .filter(|&i| a[i as usize] == 0 && b[i as usize] == 1)
                .collect();
            assert_eq!(
                out.positions().unwrap().as_slice(),
                &expected[..],
                "rows={rows}"
            );
        }
    }

    #[test]
    fn avx512_w64_backend_handles_tails() {
        if !has_avx512() {
            eprintln!("skipping: no AVX-512");
            return;
        }
        for rows in [0usize, 1, 7, 8, 9, 505] {
            let a: Vec<u64> = (0..rows as u64).map(|i| i % 3).collect();
            let b: Vec<f64> = (0..rows).map(|i| (i % 2) as f64).collect();
            let sig = ScanSig::u64_chain(&[(CmpOp::Eq, 0)], true);
            let k = CompiledKernel::compile(sig, JitBackend::Avx512).unwrap();
            let out = k.run(&[&a[..]]).unwrap();
            let expected: Vec<u32> = (0..rows as u32).filter(|&i| a[i as usize] == 0).collect();
            assert_eq!(
                out.positions().unwrap().as_slice(),
                &expected[..],
                "rows={rows}"
            );

            let sig = ScanSig::f64_chain(&[(CmpOp::Eq, 1.0)], false);
            let k = CompiledKernel::compile(sig, JitBackend::Avx512).unwrap();
            let expected = b.iter().filter(|&&v| v == 1.0).count() as u64;
            assert_eq!(k.run(&[&b[..]]).unwrap().count(), expected, "rows={rows}");
        }
    }

    #[test]
    fn validation_errors() {
        let sig = ScanSig::u32_chain(&[(CmpOp::Eq, 5), (CmpOp::Eq, 2)], false);
        let k = CompiledKernel::compile(sig, JitBackend::Scalar).unwrap();
        let a = [1u32, 2];
        let b = [1u32];
        assert_eq!(
            k.run(&[&a[..]]).unwrap_err(),
            RunError::ColumnCountMismatch {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            k.run(&[&a[..], &b[..]]).unwrap_err(),
            RunError::LengthMismatch
        );
        let ai = [1i32, 2];
        assert_eq!(
            k.run(&[&ai[..], &ai[..]]).unwrap_err(),
            RunError::ElemMismatch
        );

        // Count-mode kernel cannot serve position queries.
        let out = k.run(&[&a[..], &a[..]]).unwrap();
        assert!(matches!(out, ScanOutput::Count(_)));
        assert_eq!(
            k.run_mode(&[&a[..], &a[..]], OutputMode::Positions)
                .unwrap_err(),
            RunError::ModeMismatch
        );
    }

    #[test]
    fn disassemble_produces_assembly_when_objdump_exists() {
        let sig = ScanSig::u32_chain(&[(CmpOp::Eq, 5)], false);
        let k = CompiledKernel::compile(sig, JitBackend::Scalar).unwrap();
        match k.disassemble() {
            Some(asm) => {
                assert!(asm.contains("ret"), "{asm}");
                assert!(asm.contains("cmp"), "{asm}");
            }
            None => eprintln!("objdump unavailable — skipping"),
        }
    }

    #[test]
    fn count_mode_agrees_with_positions_mode() {
        if !has_avx512() {
            return;
        }
        let a: Vec<u32> = (0..500).map(|i| i % 7).collect();
        let kc = CompiledKernel::compile(
            ScanSig::u32_chain(&[(CmpOp::Lt, 3)], false),
            JitBackend::Avx512,
        )
        .unwrap();
        let kp = CompiledKernel::compile(
            ScanSig::u32_chain(&[(CmpOp::Lt, 3)], true),
            JitBackend::Avx512,
        )
        .unwrap();
        let c = kc.run(&[&a[..]]).unwrap().count();
        let p = kp.run(&[&a[..]]).unwrap();
        assert_eq!(c, p.count());
        // A positions kernel can serve count queries.
        assert_eq!(
            kp.run_mode(&[&a[..]], OutputMode::Count).unwrap().count(),
            c
        );
    }
}
