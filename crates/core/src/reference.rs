//! The trivially-correct reference scan: a plain row loop with
//! short-circuit evaluation. Every other implementation in this crate —
//! SISD variants, block-at-a-time, the scalar fused engine, the AVX2 and
//! AVX-512 fused kernels, and the JIT-emitted code — is differential-tested
//! against this one.

use fts_storage::{NativeType, PosList};

use crate::pred::{ColumnPred, ScanOutput, TypedPred};

/// Rows (ascending) matching every predicate of a homogeneous typed chain.
///
/// Panics if any predicate's column is shorter than the first one (all
/// chain columns must cover the same rows).
pub fn scan_positions<T: NativeType>(preds: &[TypedPred<'_, T>]) -> PosList {
    let Some(first) = preds.first() else {
        return PosList::new();
    };
    let rows = first.data.len();
    for p in preds {
        assert_eq!(p.data.len(), rows, "chain columns must have equal length");
    }
    let mut out = PosList::new();
    for row in 0..rows {
        if preds.iter().all(|p| p.matches(row)) {
            out.push(row as u32);
        }
    }
    out
}

/// `COUNT(*)` form of [`scan_positions`].
pub fn scan_count<T: NativeType>(preds: &[TypedPred<'_, T>]) -> u64 {
    scan_positions(preds).len() as u64
}

/// Dynamic-typed reference over [`fts_storage::Column`]s; columns may have
/// different types (the fully general case of §V). Returns `None` if any
/// needle's type does not match its column.
pub fn scan_columns(preds: &[ColumnPred<'_>]) -> Option<ScanOutput> {
    let Some(first) = preds.first() else {
        return Some(ScanOutput::Positions(PosList::new()));
    };
    let rows = first.column.len();
    let mut out = PosList::new();
    for row in 0..rows {
        let mut all = true;
        for p in preds {
            if !p.column.matches_at(row, p.op, p.needle)? {
                all = false;
                break;
            }
        }
        if all {
            out.push(row as u32);
        }
    }
    Some(ScanOutput::Positions(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_storage::{CmpOp, Column, Value};

    #[test]
    fn two_predicate_example_from_paper() {
        // SELECT COUNT(*) FROM tbl WHERE a = 5 AND b = 2 — Fig. 3 data.
        let a = [2u32, 5, 4, 5, 6, 1, 5, 7, 6, 8, 5, 3, 5, 9, 9, 5];
        let b = [5u32, 2, 3, 1, 1, 3, 6, 0, 8, 7, 3, 3, 2, 9, 3, 2];
        let preds = [TypedPred::eq(&a[..], 5), TypedPred::eq(&b[..], 2)];
        let pos = scan_positions(&preds);
        // Row 1 (a=5,b=2), row 12 (a=5,b=2), row 15 (a=5,b=2).
        assert_eq!(pos.as_slice(), &[1, 12, 15]);
        assert_eq!(scan_count(&preds), 3);
    }

    #[test]
    fn empty_chain_and_empty_column() {
        assert!(scan_positions::<u32>(&[]).is_empty());
        let empty: [u32; 0] = [];
        assert!(scan_positions(&[TypedPred::eq(&empty[..], 1)]).is_empty());
    }

    #[test]
    fn mixed_type_dynamic_chain() {
        let a = Column::from_vec(vec![1u32, 5, 5, 5]);
        let b = Column::from_vec(vec![-1i64, 3, -1, 3]);
        let preds = [
            ColumnPred {
                column: &a,
                op: CmpOp::Eq,
                needle: Value::U32(5),
            },
            ColumnPred {
                column: &b,
                op: CmpOp::Gt,
                needle: Value::I64(0),
            },
        ];
        let out = scan_columns(&preds).unwrap();
        assert_eq!(out.positions().unwrap().as_slice(), &[1, 3]);
    }

    #[test]
    fn dynamic_chain_type_mismatch_is_none() {
        let a = Column::from_vec(vec![1u32]);
        let preds = [ColumnPred {
            column: &a,
            op: CmpOp::Eq,
            needle: Value::I32(1),
        }];
        assert!(scan_columns(&preds).is_none());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_chain_panics() {
        let a = [1u32, 2];
        let b = [1u32];
        let _ = scan_positions(&[TypedPred::eq(&a[..], 1), TypedPred::eq(&b[..], 1)]);
    }
}
