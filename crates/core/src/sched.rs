//! Scheduler substrate: a per-core sharded morsel pool and query
//! admission control.
//!
//! The original [`run_scan_parallel`](crate::run_scan_parallel) spawned a
//! fresh set of OS threads per scan. That is fine for one query at a time
//! and catastrophic for a server running hundreds of scans per second:
//! thread churn, no global cap on CPU oversubscription, and no way to say
//! *no* under overload. This module replaces it with two cooperating
//! pieces, modeled on the router → sharder → querier split of
//! production-grade engines:
//!
//! * [`ScanPool`] — a process-wide pool of persistent workers, one per
//!   core, each owning a sharded task queue with work stealing. Scans
//!   submit short-lived *worker loops* that drain a morsel cursor; the
//!   submitting thread participates too (caller-runs), so a scan always
//!   makes progress even when every pool worker is busy with other
//!   queries.
//! * [`AdmissionController`] — a configurable concurrency + byte budget
//!   with a bounded FIFO wait queue. Work that fits runs, work that can
//!   wait queues, and work beyond the bound is rejected with an explicit
//!   [`EngineError::Overloaded`] instead of piling up unboundedly.
//!
//! Both are deliberately engine-agnostic: the pool runs any `FnOnce`, the
//! controller admits any cost expressed in bytes, so the SQL server, the
//! benches and the library path all share one scheduler.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use crate::engine::EngineError;

/// A unit of pool work. Tasks are `'static`: scoped borrows enter the
/// pool only through [`ScanPool::scope_run`], which erases the lifetime
/// and re-establishes safety with a completion barrier.
type Task = Box<dyn FnOnce() + Send + 'static>;

struct ShardState {
    queue: VecDeque<Task>,
    shutdown: bool,
}

/// One per-worker task queue.
struct Shard {
    state: Mutex<ShardState>,
    /// Signalled when work arrives or shutdown begins.
    available: Condvar,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            state: Mutex::new(ShardState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ShardState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn push(&self, task: Task) {
        self.lock().queue.push_back(task);
        self.available.notify_one();
    }

    /// Pop from the front (the owner's end).
    fn pop(&self) -> Option<Task> {
        self.lock().queue.pop_front()
    }

    /// Steal from the back (the thief's end), keeping the owner's FIFO
    /// head untouched as long as possible.
    fn steal(&self) -> Option<Task> {
        self.lock().queue.pop_back()
    }
}

/// A process-wide pool of persistent scan workers with per-core sharded
/// queues and work stealing.
///
/// Workers never block on scan results, only on empty queues — scans wait
/// for *their own* tasks via a completion barrier, so the pool cannot
/// deadlock on nested waits as long as tasks themselves never call
/// [`ScanPool::scope_run`] (morsel tasks are leaves by construction).
pub struct ScanPool {
    shards: Vec<Arc<Shard>>,
    /// Round-robin submission cursor.
    next: AtomicUsize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ScanPool {
    /// A pool with `workers` persistent threads (min 1).
    pub fn new(workers: usize) -> ScanPool {
        let workers = workers.max(1);
        let shards: Vec<Arc<Shard>> = (0..workers).map(|_| Arc::new(Shard::new())).collect();
        let handles = (0..workers)
            .map(|i| {
                let mine = Arc::clone(&shards[i]);
                let others: Vec<Arc<Shard>> = (0..workers)
                    .filter(|&j| j != i)
                    .map(|j| Arc::clone(&shards[j]))
                    .collect();
                std::thread::Builder::new()
                    .name(format!("fts-scan-{i}"))
                    .spawn(move || worker_loop(&mine, &others))
                    .expect("spawn scan worker")
            })
            .collect();
        ScanPool {
            shards,
            next: AtomicUsize::new(0),
            workers: handles,
        }
    }

    /// The process-wide pool, sized by `FTS_POOL_WORKERS` or the number
    /// of available cores (capped at 64), created on first use.
    pub fn global() -> &'static ScanPool {
        static POOL: OnceLock<ScanPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let workers = std::env::var("FTS_POOL_WORKERS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(4)
                })
                .clamp(1, 64);
            ScanPool::new(workers)
        })
    }

    /// Number of persistent workers.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Run `f(0), …, f(tasks-1)` to completion, borrowing from the
    /// caller's scope. `f(0)` runs on the calling thread (caller-runs, so
    /// the scan progresses even on a saturated pool); the rest are
    /// sharded round-robin across the pool workers. Panics inside `f`
    /// are caught per task and re-raised on the caller once every task
    /// has finished, so borrowed data never outlives a running task.
    pub fn scope_run<'env, F>(&self, tasks: usize, f: F)
    where
        F: Fn(usize) + Send + Sync + 'env,
    {
        if tasks == 0 {
            return;
        }
        if tasks == 1 {
            f(0);
            return;
        }
        let barrier = Arc::new(Completion::new(tasks - 1));
        {
            // Erase the closure's lifetime: the barrier wait below keeps
            // `f` (and everything it borrows) alive until every task ran.
            let f_ref: &(dyn Fn(usize) + Send + Sync) = &f;
            let f_static: &'static (dyn Fn(usize) + Send + Sync) =
                // SAFETY: `scope_run` does not return before
                // `barrier.wait()` observes that all submitted tasks have
                // completed (their panics captured), so no task can touch
                // `f` or its borrows after this stack frame unwinds.
                unsafe { std::mem::transmute(f_ref) };
            for i in 1..tasks {
                let barrier = Arc::clone(&barrier);
                let shard = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
                self.shards[shard].push(Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| f_static(i)));
                    barrier.task_done(result.err());
                }));
            }
        }
        // The caller works too, then blocks until the pool finished.
        let own = catch_unwind(AssertUnwindSafe(|| f(0)));
        let pool_panic = barrier.wait();
        if let Err(panic) = own {
            resume_unwind(panic);
        }
        if let Some(panic) = pool_panic {
            resume_unwind(panic);
        }
    }
}

impl Drop for ScanPool {
    fn drop(&mut self) {
        for shard in &self.shards {
            shard.lock().shutdown = true;
            shard.available.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(mine: &Shard, others: &[Arc<Shard>]) {
    loop {
        // Own queue first, then steal.
        let task = mine.pop().or_else(|| others.iter().find_map(|s| s.steal()));
        match task {
            Some(task) => task(),
            None => {
                let guard = mine.lock();
                if guard.shutdown {
                    return;
                }
                if guard.queue.is_empty() {
                    // Timed wait so steals of work submitted to other
                    // shards are picked up even without a local notify.
                    let (guard, _) = mine
                        .available
                        .wait_timeout(guard, Duration::from_millis(1))
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    if guard.shutdown {
                        return;
                    }
                }
            }
        }
    }
}

/// Completion barrier for one [`ScanPool::scope_run`] call: counts tasks
/// down and carries the first captured panic payload back to the caller.
struct Completion {
    state: Mutex<CompletionState>,
    done: Condvar,
}

struct CompletionState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Completion {
    fn new(tasks: usize) -> Completion {
        Completion {
            state: Mutex::new(CompletionState {
                remaining: tasks,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn task_done(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut guard = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.remaining -= 1;
        if guard.panic.is_none() {
            guard.panic = panic;
        }
        if guard.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut guard = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while guard.remaining > 0 {
            guard = self
                .done
                .wait(guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        guard.panic.take()
    }
}

/// Budget knobs for [`AdmissionController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Queries allowed to run simultaneously.
    pub max_concurrent: usize,
    /// Requests allowed to wait for a slot; one more is rejected.
    pub max_queued: usize,
    /// Total bytes the running queries may collectively touch
    /// (`u64::MAX` disables the byte budget). A single request whose
    /// declared cost exceeds this is rejected outright — it could never
    /// be admitted.
    pub max_bytes: u64,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_queued: 64,
            max_bytes: u64::MAX,
        }
    }
}

struct AdmState {
    running: usize,
    running_bytes: u64,
    /// FIFO tickets of the waiters, front is next to be admitted.
    waiting: VecDeque<u64>,
    next_ticket: u64,
}

/// Admission control with a bounded FIFO wait queue.
///
/// [`AdmissionController::admit`] either grants a [`Permit`] (possibly
/// after waiting in line), or fails fast with
/// [`EngineError::Overloaded`] when the wait queue is already full or the
/// request alone exceeds the byte budget. Permits release their share of
/// the budget on drop, waking the next waiter in FIFO order — so every
/// queued request is eventually admitted (no starvation) and the
/// concurrency/byte budget is never exceeded.
pub struct AdmissionController {
    cfg: AdmissionConfig,
    state: Mutex<AdmState>,
    freed: Condvar,
}

impl AdmissionController {
    /// A controller enforcing `cfg`.
    pub fn new(cfg: AdmissionConfig) -> AdmissionController {
        AdmissionController {
            cfg,
            state: Mutex::new(AdmState {
                running: 0,
                running_bytes: 0,
                waiting: VecDeque::new(),
                next_ticket: 0,
            }),
            freed: Condvar::new(),
        }
    }

    /// The configured budget.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Currently admitted queries and queued waiters: `(running, queued)`.
    pub fn load(&self) -> (usize, usize) {
        let guard = self.lock();
        (guard.running, guard.waiting.len())
    }

    fn lock(&self) -> MutexGuard<'_, AdmState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn fits(&self, state: &AdmState, bytes: u64) -> bool {
        state.running < self.cfg.max_concurrent
            && state.running_bytes.saturating_add(bytes) <= self.cfg.max_bytes
    }

    /// Admit work that will touch `bytes` bytes, waiting in FIFO order
    /// for budget if necessary. Returns the permit, or
    /// [`EngineError::Overloaded`] when the wait queue is full or the
    /// request can never fit.
    pub fn admit(&self, bytes: u64) -> Result<Permit<'_>, EngineError> {
        self.admit_tracked(bytes).map(|(permit, _)| permit)
    }

    /// [`AdmissionController::admit`], additionally reporting whether the
    /// request had to queue (`true`) or was admitted on the fast path
    /// (`false`) — feed for the server's admitted/queued telemetry.
    pub fn admit_tracked(&self, bytes: u64) -> Result<(Permit<'_>, bool), EngineError> {
        let mut guard = self.lock();
        if bytes > self.cfg.max_bytes {
            return Err(EngineError::Overloaded {
                running: guard.running,
                queued: guard.waiting.len(),
                oversized: Some((bytes, self.cfg.max_bytes)),
            });
        }
        // Fast path: nobody in line and the budget fits right now.
        if guard.waiting.is_empty() && self.fits(&guard, bytes) {
            guard.running += 1;
            guard.running_bytes += bytes;
            return Ok((Permit { ctrl: self, bytes }, false));
        }
        if guard.waiting.len() >= self.cfg.max_queued {
            return Err(EngineError::Overloaded {
                running: guard.running,
                queued: guard.waiting.len(),
                oversized: None,
            });
        }
        let ticket = guard.next_ticket;
        guard.next_ticket += 1;
        guard.waiting.push_back(ticket);
        loop {
            if guard.waiting.front() == Some(&ticket) && self.fits(&guard, bytes) {
                guard.waiting.pop_front();
                guard.running += 1;
                guard.running_bytes += bytes;
                // The next waiter may also fit (e.g. byte budget with
                // room for two) — pass the wakeup along.
                self.freed.notify_all();
                return Ok((Permit { ctrl: self, bytes }, true));
            }
            guard = self
                .freed
                .wait(guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn release(&self, bytes: u64) {
        let mut guard = self.lock();
        guard.running -= 1;
        guard.running_bytes -= bytes;
        drop(guard);
        self.freed.notify_all();
    }
}

/// One admitted query's share of the budget; released on drop.
pub struct Permit<'a> {
    ctrl: &'a AdmissionController,
    bytes: u64,
}

impl std::fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit")
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl Permit<'_> {
    /// The declared cost this permit holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.ctrl.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_all_tasks_with_borrows() {
        let pool = ScanPool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let sums: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
        pool.scope_run(8, |i| {
            let chunk = data.len() / 8;
            let part: u64 = data[i * chunk..(i + 1) * chunk].iter().sum();
            sums[i].store(part, Ordering::Relaxed);
        });
        let total: u64 = sums.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 1000 * 999 / 2);
    }

    #[test]
    fn pool_propagates_task_panics() {
        let pool = ScanPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope_run(4, |i| {
                if i == 2 {
                    panic!("task 2 exploded");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives a panicking scope: workers keep serving.
        let ran = AtomicUsize::new(0);
        pool.scope_run(4, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn pool_handles_many_concurrent_scopes() {
        let pool = Arc::new(ScanPool::new(3));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for round in 0..10 {
                        let counter = AtomicUsize::new(0);
                        pool.scope_run(5, |_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                        assert_eq!(counter.load(Ordering::Relaxed), 5, "t={t} round={round}");
                    }
                });
            }
        });
    }

    #[test]
    fn admission_grants_up_to_budget_and_rejects_past_queue() {
        let ctrl = AdmissionController::new(AdmissionConfig {
            max_concurrent: 2,
            max_queued: 0,
            max_bytes: u64::MAX,
        });
        let p1 = ctrl.admit(1).unwrap();
        let p2 = ctrl.admit(1).unwrap();
        let err = ctrl.admit(1).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Overloaded {
                running: 2,
                queued: 0,
                oversized: None
            }
        ));
        drop(p1);
        let _p3 = ctrl.admit(1).unwrap();
        drop(p2);
        assert_eq!(ctrl.load().0, 1);
    }

    #[test]
    fn admission_rejects_oversized_outright() {
        let ctrl = AdmissionController::new(AdmissionConfig {
            max_concurrent: 8,
            max_queued: 8,
            max_bytes: 100,
        });
        let err = ctrl.admit(101).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Overloaded {
                oversized: Some((101, 100)),
                ..
            }
        ));
        // A fitting request is unaffected.
        let _p = ctrl.admit(100).unwrap();
    }

    #[test]
    fn admission_never_exceeds_budget_under_contention() {
        let ctrl = Arc::new(AdmissionController::new(AdmissionConfig {
            max_concurrent: 3,
            max_queued: 64,
            max_bytes: u64::MAX,
        }));
        let peak = Arc::new(AtomicUsize::new(0));
        let current = Arc::new(AtomicUsize::new(0));
        let rejected = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..16 {
                let (ctrl, peak, current, rejected) = (
                    Arc::clone(&ctrl),
                    Arc::clone(&peak),
                    Arc::clone(&current),
                    Arc::clone(&rejected),
                );
                scope.spawn(move || {
                    for _ in 0..50 {
                        match ctrl.admit(1) {
                            Ok(_permit) => {
                                let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                                peak.fetch_max(now, Ordering::SeqCst);
                                std::thread::yield_now();
                                current.fetch_sub(1, Ordering::SeqCst);
                            }
                            Err(EngineError::Overloaded { .. }) => {
                                rejected.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(other) => panic!("unexpected error {other:?}"),
                        }
                    }
                });
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "budget exceeded: {}",
            peak.load(Ordering::SeqCst)
        );
        let (running, queued) = ctrl.load();
        assert_eq!((running, queued), (0, 0), "all permits released");
    }

    #[test]
    fn admission_byte_budget_gates_concurrency() {
        let ctrl = AdmissionController::new(AdmissionConfig {
            max_concurrent: 10,
            max_queued: 10,
            max_bytes: 10,
        });
        let p1 = ctrl.admit(6).unwrap();
        // 6 + 6 > 10: the second must wait; with an empty queue slot it
        // queues, so probe via a thread plus release.
        let ctrl_ref = &ctrl;
        std::thread::scope(|scope| {
            let waiter = scope.spawn(move || {
                let _p = ctrl_ref.admit(6).unwrap();
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(ctrl.load(), (1, 1), "second request is queued");
            drop(p1);
            waiter.join().unwrap();
        });
        assert_eq!(ctrl.load(), (0, 0));
    }
}
