//! Block-at-a-time baselines — the "traditional vectorized" execution model
//! the paper contrasts against (§I): evaluate one predicate over a block (or
//! the whole column), **materialize** the intermediate result, then let the
//! next predicate consume it.
//!
//! Two classic shapes are implemented:
//!
//! * [`bitmap_scan`] — one full-column bitmask per predicate, combined with
//!   bitwise AND. This is the "return the complete bitmask to the next
//!   operator" strategy of §III; the materialized intermediates are what the
//!   Fused Table Scan eliminates (ablation `materialize`).
//! * [`block_scan`] — MonetDB/X100-style selection-vector refinement within
//!   cache-resident blocks: predicate 1 produces a position buffer,
//!   predicate 2 shrinks it, and so on. Intermediates stay in cache but are
//!   still materialized per step.

use fts_storage::{NativeType, PosList};

use crate::pred::TypedPred;

/// A dense bitmask over rows, one bit per row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    rows: usize,
}

impl Bitmap {
    /// All-zero bitmap over `rows` rows.
    pub fn zeros(rows: usize) -> Bitmap {
        Bitmap {
            words: vec![0; rows.div_ceil(64)],
            rows,
        }
    }

    /// Number of rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Set bit `row`.
    #[inline]
    pub fn set(&mut self, row: usize) {
        self.words[row / 64] |= 1 << (row % 64);
    }

    /// Read bit `row`.
    #[inline]
    pub fn get(&self, row: usize) -> bool {
        self.words[row / 64] >> (row % 64) & 1 == 1
    }

    /// `self &= other`; both bitmaps must cover the same rows.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.rows, other.rows, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Positions of set bits, ascending.
    pub fn to_positions(&self) -> PosList {
        let mut out = PosList::with_capacity(self.count_ones() as usize);
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push((wi * 64 + bit) as u32);
                w &= w - 1;
            }
        }
        out
    }
}

/// Evaluate one predicate over its whole column into a bitmask. The loop is
/// branch-free, so the compiler vectorizes it — this is the fast part of
/// block-at-a-time execution; the cost is the materialized intermediate.
pub fn predicate_bitmap<T: NativeType>(pred: &TypedPred<'_, T>) -> Bitmap {
    let rows = pred.data.len();
    let mut bm = Bitmap::zeros(rows);
    for (wi, chunk) in pred.data.chunks(64).enumerate() {
        let mut word = 0u64;
        for (bit, v) in chunk.iter().enumerate() {
            word |= (v.cmp_op(pred.op, pred.needle) as u64) << bit;
        }
        bm.words[wi] = word;
    }
    bm
}

/// Full-column bitmask scan: one materialized bitmask per predicate, ANDed.
pub fn bitmap_scan<T: NativeType>(preds: &[TypedPred<'_, T>]) -> PosList {
    let Some(first) = preds.first() else {
        return PosList::new();
    };
    let mut acc = predicate_bitmap(first);
    for p in &preds[1..] {
        assert_eq!(
            p.data.len(),
            acc.rows(),
            "chain columns must have equal length"
        );
        acc.and_assign(&predicate_bitmap(p));
    }
    acc.to_positions()
}

/// Counting form of [`bitmap_scan`].
pub fn bitmap_scan_count<T: NativeType>(preds: &[TypedPred<'_, T>]) -> u64 {
    let Some(first) = preds.first() else { return 0 };
    let mut acc = predicate_bitmap(first);
    for p in &preds[1..] {
        acc.and_assign(&predicate_bitmap(p));
    }
    acc.count_ones()
}

/// Default block size for [`block_scan`] (values, not bytes) — sized so a
/// block of 4-byte values plus its selection vector stay L1-resident.
pub const DEFAULT_BLOCK_ROWS: usize = 1024;

/// Selection-vector block scan. Within each block, predicate 1 fills a
/// position buffer; each following predicate compacts it in place.
pub fn block_scan<T: NativeType>(preds: &[TypedPred<'_, T>], block_rows: usize) -> PosList {
    assert!(block_rows > 0, "block size must be positive");
    let Some(first) = preds.first() else {
        return PosList::new();
    };
    let rows = first.data.len();
    for p in preds {
        assert_eq!(p.data.len(), rows, "chain columns must have equal length");
    }

    let mut out = PosList::new();
    let mut sel: Vec<u32> = Vec::with_capacity(block_rows);
    let mut base = 0usize;
    while base < rows {
        let end = (base + block_rows).min(rows);
        // Predicate 1 → fresh selection vector (branch-free fill).
        sel.clear();
        sel.resize(end - base, 0);
        let mut n = 0usize;
        for row in base..end {
            sel[n] = row as u32;
            n += usize::from(first.matches(row));
        }
        sel.truncate(n);
        // Following predicates compact the selection vector in place.
        for p in &preds[1..] {
            let mut kept = 0usize;
            for i in 0..sel.len() {
                let row = sel[i];
                sel[kept] = row;
                kept += usize::from(p.matches(row as usize));
            }
            sel.truncate(kept);
            if sel.is_empty() {
                break;
            }
        }
        for &row in &sel {
            out.push(row);
        }
        base = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use fts_storage::CmpOp;

    #[test]
    fn bitmap_basics() {
        let mut bm = Bitmap::zeros(130);
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(64) && !bm.get(65));
        assert_eq!(bm.count_ones(), 3);
        assert_eq!(bm.to_positions().as_slice(), &[0, 64, 129]);
    }

    #[test]
    fn bitmap_and() {
        let mut a = Bitmap::zeros(10);
        let mut b = Bitmap::zeros(10);
        a.set(1);
        a.set(5);
        b.set(5);
        b.set(7);
        a.and_assign(&b);
        assert_eq!(a.to_positions().as_slice(), &[5]);
    }

    #[test]
    fn scans_agree_with_reference() {
        let a: Vec<i32> = (0..3000).map(|i| i % 13 - 6).collect();
        let b: Vec<i32> = (0..3000).map(|i| (i * 3) % 7).collect();
        for op in CmpOp::ALL {
            let preds = [
                TypedPred::new(&a[..], op, 0i32),
                TypedPred::new(&b[..], CmpOp::Lt, 3i32),
            ];
            let expected = reference::scan_positions(&preds);
            assert_eq!(bitmap_scan(&preds), expected, "{op}");
            assert_eq!(bitmap_scan_count(&preds), expected.len() as u64, "{op}");
            assert_eq!(block_scan(&preds, DEFAULT_BLOCK_ROWS), expected, "{op}");
            assert_eq!(block_scan(&preds, 64), expected, "{op} small blocks");
            assert_eq!(block_scan(&preds, 7), expected, "{op} odd blocks");
        }
    }

    #[test]
    fn single_predicate_and_empty() {
        let a = [5u32, 1, 5];
        let preds = [TypedPred::eq(&a[..], 5u32)];
        assert_eq!(bitmap_scan(&preds).as_slice(), &[0, 2]);
        assert_eq!(block_scan(&preds, 2).as_slice(), &[0, 2]);
        assert!(bitmap_scan::<u32>(&[]).is_empty());
        assert!(block_scan::<u32>(&[], 4).is_empty());
    }

    #[test]
    fn non_multiple_of_64_rows() {
        let a: Vec<u32> = (0..67).map(|i| i % 2).collect();
        let preds = [TypedPred::eq(&a[..], 1u32)];
        assert_eq!(bitmap_scan_count(&preds), 33);
        assert_eq!(bitmap_scan(&preds).len(), 33);
    }
}
