//! SISD baselines — the "data-centric" scans of paper §II.
//!
//! Three variants, matching the evaluation's baselines:
//!
//! * [`branching_count`]/[`branching_positions`] — the naïve tuple-at-a-time loop from §II, with
//!   short-circuit `&&` between predicates. One conditional jump per
//!   predicate per row: the branch-misprediction victim of Figs. 1 and 6.
//!   This is *SISD (no vec)*: the data-dependent branches prevent the
//!   compiler from vectorizing it.
//! * [`branchfree_count`] — evaluates every predicate unconditionally and combines
//!   with bitwise `&`. No data-dependent branches; LLVM auto-vectorizes the
//!   counting form. This is the *SISD (auto vec)* baseline: the same
//!   tuple-at-a-time logic, restructured just enough for the compiler's
//!   auto-vectorizer (the paper compiles with gcc `-O3`; rustc's `-O3`
//!   equivalent vectorizes this shape).
//! * [`branchfree_positions`] — branch-free position-list form, using the
//!   classic unconditional-store-and-bump idiom.

use fts_storage::{NativeType, PosList};

use crate::pred::TypedPred;

/// Naïve short-circuit scan, counting form (the exact loop of paper §II).
pub fn branching_count<T: NativeType>(preds: &[TypedPred<'_, T>]) -> u64 {
    let Some(first) = preds.first() else { return 0 };
    let rows = first.data.len();
    let mut total: u64 = 0;
    for row in 0..rows {
        // Short-circuit: later columns are only touched when earlier
        // predicates matched — the conditional load the prefetcher
        // speculates on (paper §II).
        if preds.iter().all(|p| p.matches(row)) {
            total += 1;
        }
    }
    total
}

/// Naïve short-circuit scan, position-list form.
pub fn branching_positions<T: NativeType>(preds: &[TypedPred<'_, T>]) -> PosList {
    let Some(first) = preds.first() else {
        return PosList::new();
    };
    let rows = first.data.len();
    let mut out = PosList::new();
    for row in 0..rows {
        if preds.iter().all(|p| p.matches(row)) {
            out.push(row as u32);
        }
    }
    out
}

/// Branch-free conjunctive count. Every predicate is evaluated for every
/// row; the per-row match bit is accumulated arithmetically, so the loop
/// body has no data-dependent branch and auto-vectorizes.
pub fn branchfree_count<T: NativeType>(preds: &[TypedPred<'_, T>]) -> u64 {
    let Some(first) = preds.first() else { return 0 };
    let rows = first.data.len();
    for p in preds {
        assert_eq!(p.data.len(), rows, "chain columns must have equal length");
    }
    let mut total: u64 = 0;
    match preds {
        // The common chain lengths get dedicated loops so the compiler sees
        // fixed trip structure (this is what the paper's JIT would emit for
        // a SISD pipeline); the general case folds over the slice.
        [p0] => {
            for row in 0..rows {
                total += u64::from(p0.matches(row));
            }
        }
        [p0, p1] => {
            for row in 0..rows {
                total += u64::from(p0.matches(row) & p1.matches(row));
            }
        }
        [p0, p1, p2] => {
            for row in 0..rows {
                total += u64::from(p0.matches(row) & p1.matches(row) & p2.matches(row));
            }
        }
        _ => {
            for row in 0..rows {
                let mut hit = true;
                for p in preds {
                    hit &= p.matches(row);
                }
                total += u64::from(hit);
            }
        }
    }
    total
}

/// Branch-free position-list scan: unconditionally writes the row id and
/// bumps the output cursor by the match bit.
pub fn branchfree_positions<T: NativeType>(preds: &[TypedPred<'_, T>]) -> PosList {
    let Some(first) = preds.first() else {
        return PosList::new();
    };
    let rows = first.data.len();
    for p in preds {
        assert_eq!(p.data.len(), rows, "chain columns must have equal length");
    }
    let mut buf: Vec<u32> = vec![0; rows];
    let mut cursor = 0usize;
    for row in 0..rows {
        let mut hit = true;
        for p in preds {
            hit &= p.matches(row);
        }
        buf[cursor] = row as u32;
        cursor += usize::from(hit);
    }
    buf.truncate(cursor);
    PosList::from_vec(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use fts_storage::CmpOp;

    fn chain_data() -> (Vec<u32>, Vec<u32>) {
        let a: Vec<u32> = (0..1000).map(|i| i % 10).collect();
        let b: Vec<u32> = (0..1000).map(|i| (i * 7) % 5).collect();
        (a, b)
    }

    #[test]
    fn all_variants_agree_with_reference() {
        let (a, b) = chain_data();
        for op in CmpOp::ALL {
            let preds = [
                TypedPred::new(&a[..], op, 5u32),
                TypedPred::new(&b[..], CmpOp::Eq, 2u32),
            ];
            let expected = reference::scan_positions(&preds);
            assert_eq!(branching_count(&preds), expected.len() as u64, "{op}");
            assert_eq!(branching_positions(&preds), expected, "{op}");
            assert_eq!(branchfree_count(&preds), expected.len() as u64, "{op}");
            assert_eq!(branchfree_positions(&preds), expected, "{op}");
        }
    }

    #[test]
    fn chain_lengths_one_to_five() {
        let cols: Vec<Vec<u32>> = (0..5u32)
            .map(|c| (0..500u32).map(|i| (i.wrapping_mul(c + 3)) % 4).collect())
            .collect();
        for p in 1..=5 {
            let preds: Vec<TypedPred<'_, u32>> =
                cols[..p].iter().map(|c| TypedPred::eq(&c[..], 1)).collect();
            let expected = reference::scan_count(&preds);
            assert_eq!(branchfree_count(&preds), expected, "P={p}");
            assert_eq!(branching_count(&preds), expected, "P={p}");
            assert_eq!(branchfree_positions(&preds).len() as u64, expected, "P={p}");
        }
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(branching_count::<u32>(&[]), 0);
        assert_eq!(branchfree_count::<u32>(&[]), 0);
        assert!(branchfree_positions::<u32>(&[]).is_empty());
        let empty: [i64; 0] = [];
        let preds = [TypedPred::eq(&empty[..], 5i64)];
        assert_eq!(branching_count(&preds), 0);
        assert_eq!(branchfree_count(&preds), 0);
    }

    #[test]
    fn float_nan_semantics_carry_over() {
        let a = [1.0f32, f32::NAN, 1.0];
        for op in CmpOp::ALL {
            let preds = [TypedPred::new(&a[..], op, f32::NAN)];
            assert_eq!(branchfree_count(&preds), 0, "{op} NaN");
        }
        let preds = [TypedPred::new(&a[..], CmpOp::Ne, 2.0f32)];
        // NaN != 2.0 is *false* under ordered-compare semantics.
        assert_eq!(branchfree_positions(&preds).as_slice(), &[0, 2]);
    }
}
