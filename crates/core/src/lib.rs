//! # fts-core — the Fused Table Scan
//!
//! Reproduction of the scan operator from *"Fused Table Scans: Combining
//! AVX-512 and JIT to Double the Performance of Multi-Predicate Scans"*
//! (Dreseler et al., HardBD/Active @ ICDE 2018).
//!
//! Implementations, all differential-tested against [`mod@reference`]:
//!
//! * [`sisd`] — tuple-at-a-time baselines (branching §II, branch-free /
//!   auto-vectorizing).
//! * [`blockwise`] — block-at-a-time baselines with materialized
//!   intermediates (bitmask AND, selection-vector refinement).
//! * [`fused`] — the paper's contribution: the scalar model engine
//!   ([`fused::scalar`]), the AVX2 backport ([`fused::avx2`]) and the
//!   AVX-512 kernels at 128/256/512 bits ([`fused::avx512`]).
//! * [`engine`] — runtime dispatch over ISA, element type, register width
//!   and output mode; the API the query layer and benchmarks call.
//! * [`bool_expr`] — boolean predicate trees (AND/OR/NOT) normalized to a
//!   disjunction of fused sub-chains (NNF → DNF → prefix factoring) and
//!   executed as mask union/intersection of position lists.
//! * [`stride`] — the strided-scan bandwidth microbenchmark of Fig. 2.

#![warn(missing_docs)]

pub mod adaptive;
pub mod blockwise;
pub mod bool_expr;
pub mod engine;
pub mod fused;
pub mod parallel;
pub mod pred;
pub mod reference;
pub mod sched;
pub mod sisd;
pub mod stride;
pub mod telemetry;

pub use adaptive::{
    candidate_scan_impls, estimate_cost, estimate_packed_cost, rank_scan_impls, run_scan_adaptive,
    AdaptiveConfig, AdaptiveScanReport, CalibrationConfig, CalibrationReport, Calibrator,
    CandidateStats, ChainProfile, CostEstimate, Encoding, Phase, PredProfile, RankedKernel,
};
pub use bool_expr::{
    reference_scan_bool, run_scan_bool, scan_conjunct, scan_factored, value_key_bits, BoolExpr,
    Dnf, DnfError, FactoredDnf, MAX_DNF_DISJUNCTS,
};
pub use engine::{
    best_fused_impl, run_fused_auto, run_scan, run_scan_telemetered, scan_columns_auto,
    scan_columns_auto_telemetered, EngineError, RegWidth, ScanElem, ScanImpl,
};
pub use fused::bytesliced::{scan_bytesliced, ByteSliceStats};
pub use fused::for_scan::{
    fused_scan_for, scan_for_reference, ForPred, ForScanError, ForScanStats,
};
pub use parallel::{run_scan_parallel, run_scan_parallel_telemetered, DEFAULT_MORSEL_ROWS};
pub use pred::{ColumnPred, OutputMode, ScanOutput, TypedPred};
pub use sched::{AdmissionConfig, AdmissionController, Permit, ScanPool};
pub use telemetry::{BoundVerdict, ScanTelemetry, StageTelemetry, TelemetryLevel};
