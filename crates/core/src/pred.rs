//! Predicate and output types shared by every scan implementation.

use fts_storage::{CmpOp, Column, NativeType, PosList, Value};

/// A typed predicate bound to its column data: `data[row] OP needle`.
#[derive(Debug, Clone, Copy)]
pub struct TypedPred<'a, T> {
    /// The column values (one chunk's worth).
    pub data: &'a [T],
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub needle: T,
}

impl<'a, T: NativeType> TypedPred<'a, T> {
    /// Convenience constructor.
    pub fn new(data: &'a [T], op: CmpOp, needle: T) -> Self {
        TypedPred { data, op, needle }
    }

    /// Equality predicate (the paper's running example).
    pub fn eq(data: &'a [T], needle: T) -> Self {
        TypedPred {
            data,
            op: CmpOp::Eq,
            needle,
        }
    }

    /// Evaluate this predicate for one row.
    #[inline(always)]
    pub fn matches(&self, row: usize) -> bool {
        self.data[row].cmp_op(self.op, self.needle)
    }
}

/// A dynamically typed predicate over a [`Column`].
#[derive(Debug, Clone)]
pub struct ColumnPred<'a> {
    /// The column values (one chunk's worth).
    pub column: &'a Column,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal, already cast to the column's type.
    pub needle: Value,
}

/// What a scan produces: a match count (for `COUNT(*)` pipelines) or the
/// position list handed to the next operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanOutput {
    /// Number of rows matching all predicates.
    Count(u64),
    /// Offsets of matching rows, ascending.
    Positions(PosList),
}

impl ScanOutput {
    /// The match count regardless of representation.
    pub fn count(&self) -> u64 {
        match self {
            ScanOutput::Count(n) => *n,
            ScanOutput::Positions(p) => p.len() as u64,
        }
    }

    /// The position list, if this output carries one.
    pub fn positions(&self) -> Option<&PosList> {
        match self {
            ScanOutput::Positions(p) => Some(p),
            ScanOutput::Count(_) => None,
        }
    }
}

/// Whether a scan should produce positions or only count matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Count matching rows only (cheapest).
    Count,
    /// Materialize the position list for a consuming operator.
    Positions,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_pred_matches() {
        let data = [1u32, 5, 7];
        let p = TypedPred::eq(&data, 5);
        assert!(!p.matches(0));
        assert!(p.matches(1));
        let p = TypedPred::new(&data, CmpOp::Gt, 4u32);
        assert!(p.matches(1) && p.matches(2) && !p.matches(0));
    }

    #[test]
    fn scan_output_count() {
        assert_eq!(ScanOutput::Count(7).count(), 7);
        let pl: PosList = [1u32, 2, 9].into_iter().collect();
        let out = ScanOutput::Positions(pl);
        assert_eq!(out.count(), 3);
        assert_eq!(out.positions().unwrap().as_slice(), &[1, 2, 9]);
        assert!(ScanOutput::Count(0).positions().is_none());
    }
}
