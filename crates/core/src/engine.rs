//! Runtime dispatch over scan implementations.
//!
//! The benchmark harness and the query executor pick a [`ScanImpl`] — one of
//! the paper's six evaluated configurations plus the auxiliary baselines —
//! and this module routes it to the right kernel for the chain's element
//! type, or reports why it cannot ([`EngineError`]).

use fts_simd::{detect, SimdLevel};
use fts_storage::{DataType, NativeType, PosList};

use crate::pred::{ColumnPred, OutputMode, ScanOutput, TypedPred};
use crate::telemetry::{ScanTelemetry, TelemetryLevel};
use crate::{blockwise, fused, reference, sisd};

/// AVX register width used by a fused kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegWidth {
    /// 128-bit xmm registers (4 × 32-bit lanes).
    W128,
    /// 256-bit ymm registers (8 lanes).
    W256,
    /// 512-bit zmm registers (16 lanes).
    W512,
}

impl RegWidth {
    /// Lane count for 32-bit elements.
    pub fn lanes32(self) -> usize {
        match self {
            RegWidth::W128 => 4,
            RegWidth::W256 => 8,
            RegWidth::W512 => 16,
        }
    }

    /// Register width in bits.
    pub fn bits(self) -> usize {
        self.lanes32() * 32
    }
}

/// A scan implementation, named after the paper's Fig. 5 legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanImpl {
    /// *SISD (no vec)*: tuple-at-a-time with short-circuit branches (§II).
    SisdBranching,
    /// *SISD (auto vec)*: branch-free tuple-at-a-time the compiler
    /// auto-vectorizes.
    SisdAutoVec,
    /// Block-at-a-time with one materialized bitmask per predicate.
    BlockBitmap,
    /// Block-at-a-time with per-block selection vectors.
    BlockSelVec,
    /// Portable fused engine on the semantic models (any ISA); lane count
    /// mirrors a register width.
    FusedScalar(RegWidth),
    /// *AVX2 Fused (128)*: the backport with emulated compress/permute.
    FusedAvx2,
    /// *AVX-512 Fused (128/256/512)*.
    FusedAvx512(RegWidth),
}

impl ScanImpl {
    /// The six configurations of paper Fig. 5, in legend order.
    pub const PAPER_FIG5: [ScanImpl; 6] = [
        ScanImpl::SisdBranching,
        ScanImpl::SisdAutoVec,
        ScanImpl::FusedAvx2,
        ScanImpl::FusedAvx512(RegWidth::W128),
        ScanImpl::FusedAvx512(RegWidth::W256),
        ScanImpl::FusedAvx512(RegWidth::W512),
    ];

    /// Short name used in benchmark output (matches the paper's legend).
    pub fn name(self) -> &'static str {
        match self {
            ScanImpl::SisdBranching => "SISD (no vec)",
            ScanImpl::SisdAutoVec => "SISD (auto vec)",
            ScanImpl::BlockBitmap => "Block bitmap",
            ScanImpl::BlockSelVec => "Block selvec",
            ScanImpl::FusedScalar(RegWidth::W128) => "Scalar Fused (128)",
            ScanImpl::FusedScalar(RegWidth::W256) => "Scalar Fused (256)",
            ScanImpl::FusedScalar(RegWidth::W512) => "Scalar Fused (512)",
            ScanImpl::FusedAvx2 => "AVX2 Fused (128)",
            ScanImpl::FusedAvx512(RegWidth::W128) => "AVX-512 Fused (128)",
            ScanImpl::FusedAvx512(RegWidth::W256) => "AVX-512 Fused (256)",
            ScanImpl::FusedAvx512(RegWidth::W512) => "AVX-512 Fused (512)",
        }
    }

    /// Whether the host ISA can run this implementation.
    pub fn available(self) -> bool {
        match self {
            ScanImpl::FusedAvx2 => detect() >= SimdLevel::Avx2,
            ScanImpl::FusedAvx512(_) => detect() >= SimdLevel::Avx512,
            _ => true,
        }
    }
}

/// Why a scan could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The host lacks the instruction set the implementation needs.
    IsaUnavailable(ScanImpl),
    /// The element type has no kernel for this implementation (the SIMD
    /// kernels cover the 32-bit types; route other types through
    /// dictionary encoding or the scalar engine).
    TypeUnsupported {
        /// Requested implementation.
        imp: &'static str,
        /// Element type of the chain.
        ty: DataType,
    },
    /// Chain longer than [`fused::MAX_PREDICATES`].
    ChainTooLong(usize),
    /// A parallel worker panicked while scanning one morsel.
    WorkerPanicked {
        /// Index of the morsel whose scan panicked.
        morsel: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A morsel produced no result (a worker died without reporting).
    MorselMissing {
        /// Index of the unprocessed morsel.
        morsel: usize,
    },
    /// The scheduler's admission budget rejected the work: the bounded
    /// wait queue was full, or the request's declared cost exceeds the
    /// configured budget outright (see
    /// [`AdmissionController`](crate::sched::AdmissionController)).
    Overloaded {
        /// Queries running when the request was rejected.
        running: usize,
        /// Requests already waiting in the bounded queue.
        queued: usize,
        /// `(cost, budget)` when the request alone exceeds the byte
        /// budget and could never be admitted; `None` for queue pressure.
        oversized: Option<(u64, u64)>,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::IsaUnavailable(i) => write!(f, "{} not available on this host", i.name()),
            EngineError::TypeUnsupported { imp, ty } => {
                write!(f, "{imp} has no kernel for element type {ty}")
            }
            EngineError::ChainTooLong(n) => {
                write!(f, "{n} predicates exceed the fused-kernel limit")
            }
            EngineError::WorkerPanicked { morsel, message } => {
                write!(f, "scan worker panicked on morsel {morsel}: {message}")
            }
            EngineError::MorselMissing { morsel } => {
                write!(f, "morsel {morsel} was never processed")
            }
            EngineError::Overloaded {
                running,
                queued,
                oversized,
            } => match oversized {
                Some((cost, budget)) => write!(
                    f,
                    "overloaded: request cost {cost} B exceeds the {budget} B admission budget"
                ),
                None => write!(
                    f,
                    "overloaded: admission queue full ({running} running, {queued} queued)"
                ),
            },
        }
    }
}

impl std::error::Error for EngineError {}

/// Element types that have hardware fused kernels. The other seven native
/// types run through the scalar engine or a dictionary-encoded `u32` scan.
pub trait ScanElem: NativeType {
    /// Run the AVX2 fused kernel, if one exists for this type.
    fn fused_avx2(preds: &[TypedPred<'_, Self>], mode: OutputMode) -> Option<ScanOutput> {
        let _ = (preds, mode);
        None
    }

    /// Run the AVX-512 fused kernel at `width`, if one exists for this type.
    fn fused_avx512(
        width: RegWidth,
        preds: &[TypedPred<'_, Self>],
        mode: OutputMode,
    ) -> Option<ScanOutput> {
        let _ = (width, preds, mode);
        None
    }
}

macro_rules! impl_scan_elem_32 {
    ($t:ty, $avx2mod:ident, $m128:ident, $m256:ident, $m512:ident) => {
        impl ScanElem for $t {
            #[cfg(target_arch = "x86_64")]
            fn fused_avx2(preds: &[TypedPred<'_, Self>], mode: OutputMode) -> Option<ScanOutput> {
                Some(fused::avx2::$avx2mod::fused_scan(preds, mode))
            }

            #[cfg(target_arch = "x86_64")]
            fn fused_avx512(
                width: RegWidth,
                preds: &[TypedPred<'_, Self>],
                mode: OutputMode,
            ) -> Option<ScanOutput> {
                Some(match width {
                    RegWidth::W128 => fused::avx512::$m128::fused_scan(preds, mode),
                    RegWidth::W256 => fused::avx512::$m256::fused_scan(preds, mode),
                    RegWidth::W512 => fused::avx512::$m512::fused_scan(preds, mode),
                })
            }
        }
    };
}

impl_scan_elem_32!(u32, u32_w128, u32_w128, u32_w256, u32_w512);
impl_scan_elem_32!(i32, i32_w128, i32_w128, i32_w256, i32_w512);
impl_scan_elem_32!(f32, f32_w128, f32_w128, f32_w256, f32_w512);

macro_rules! impl_scan_elem_64 {
    ($t:ty, $m512:ident) => {
        impl ScanElem for $t {
            #[cfg(target_arch = "x86_64")]
            fn fused_avx512(
                width: RegWidth,
                preds: &[TypedPred<'_, Self>],
                mode: OutputMode,
            ) -> Option<ScanOutput> {
                // 8-byte lanes exist at full zmm width only (8 lanes).
                match width {
                    RegWidth::W512 => Some(fused::w64::$m512::fused_scan(preds, mode)),
                    RegWidth::W128 | RegWidth::W256 => None,
                }
            }
        }
    };
}

impl_scan_elem_64!(u64, u64_w512);
impl_scan_elem_64!(i64, i64_w512);
impl_scan_elem_64!(f64, f64_w512);
impl ScanElem for u8 {}
impl ScanElem for u16 {}
impl ScanElem for i8 {}
impl ScanElem for i16 {}

fn positions_to_output(pl: PosList, mode: OutputMode) -> ScanOutput {
    match mode {
        OutputMode::Count => ScanOutput::Count(pl.len() as u64),
        OutputMode::Positions => ScanOutput::Positions(pl),
    }
}

/// Run `preds` with the chosen implementation.
///
/// ```
/// use fts_core::{run_scan, OutputMode, RegWidth, ScanImpl, TypedPred};
///
/// let a: Vec<u32> = (0..100).map(|i| i % 10).collect();
/// let b: Vec<u32> = (0..100).map(|i| i % 4).collect();
/// let preds = [TypedPred::eq(&a[..], 5), TypedPred::eq(&b[..], 1)];
/// // The portable engine runs on any machine; hardware kernels via
/// // ScanImpl::FusedAvx512(..) when available.
/// let out = run_scan(ScanImpl::FusedScalar(RegWidth::W512), &preds, OutputMode::Positions)
///     .unwrap();
/// assert_eq!(out.count(), 5);
/// ```
pub fn run_scan<T: ScanElem>(
    imp: ScanImpl,
    preds: &[TypedPred<'_, T>],
    mode: OutputMode,
) -> Result<ScanOutput, EngineError> {
    if preds.len() > fused::MAX_PREDICATES {
        return Err(EngineError::ChainTooLong(preds.len()));
    }
    if !imp.available() {
        return Err(EngineError::IsaUnavailable(imp));
    }
    Ok(match imp {
        ScanImpl::SisdBranching => match mode {
            OutputMode::Count => ScanOutput::Count(sisd::branching_count(preds)),
            OutputMode::Positions => ScanOutput::Positions(sisd::branching_positions(preds)),
        },
        ScanImpl::SisdAutoVec => match mode {
            OutputMode::Count => ScanOutput::Count(sisd::branchfree_count(preds)),
            OutputMode::Positions => ScanOutput::Positions(sisd::branchfree_positions(preds)),
        },
        ScanImpl::BlockBitmap => match mode {
            OutputMode::Count => ScanOutput::Count(blockwise::bitmap_scan_count(preds)),
            OutputMode::Positions => ScanOutput::Positions(blockwise::bitmap_scan(preds)),
        },
        ScanImpl::BlockSelVec => positions_to_output(
            blockwise::block_scan(preds, blockwise::DEFAULT_BLOCK_ROWS),
            mode,
        ),
        ScanImpl::FusedScalar(w) => match w {
            RegWidth::W128 => fused::scalar::fused_scan_model::<T, 4>(preds, mode),
            RegWidth::W256 => fused::scalar::fused_scan_model::<T, 8>(preds, mode),
            RegWidth::W512 => fused::scalar::fused_scan_model::<T, 16>(preds, mode),
        },
        ScanImpl::FusedAvx2 => T::fused_avx2(preds, mode).ok_or(EngineError::TypeUnsupported {
            imp: "AVX2 Fused",
            ty: T::DATA_TYPE,
        })?,
        ScanImpl::FusedAvx512(w) => {
            T::fused_avx512(w, preds, mode).ok_or(EngineError::TypeUnsupported {
                imp: "AVX-512 Fused",
                ty: T::DATA_TYPE,
            })?
        }
    })
}

/// Run `preds` with the chosen implementation and collect
/// [`ScanTelemetry`] at the requested level.
///
/// At [`TelemetryLevel::Off`] this is exactly [`run_scan`] — the kernels
/// contain no telemetry code — and the returned record is
/// [`ScanTelemetry::disabled`]. Otherwise the real kernel is timed, and at
/// [`TelemetryLevel::Full`] stage statistics are collected afterwards
/// (see [`crate::telemetry`] for the replay/analytic strategy and its
/// one-extra-pass cost).
pub fn run_scan_telemetered<T: ScanElem>(
    imp: ScanImpl,
    preds: &[TypedPred<'_, T>],
    mode: OutputMode,
    level: TelemetryLevel,
) -> Result<(ScanOutput, ScanTelemetry), EngineError> {
    if level == TelemetryLevel::Off {
        return run_scan(imp, preds, mode).map(|o| (o, ScanTelemetry::disabled(imp.name())));
    }
    let started = std::time::Instant::now();
    let out = run_scan(imp, preds, mode)?;
    let wall = started.elapsed();
    let mut telemetry = crate::telemetry::collect(imp, preds, level);
    telemetry.wall = wall;
    Ok((out, telemetry))
}

/// The best fused implementation the host and element type support:
/// AVX-512 (512-bit) → AVX2 → scalar model engine.
pub fn best_fused_impl<T: ScanElem>() -> ScanImpl {
    let kernels_32 = matches!(T::DATA_TYPE, DataType::U32 | DataType::I32 | DataType::F32);
    let kernels_64 = matches!(T::DATA_TYPE, DataType::U64 | DataType::I64 | DataType::F64);
    match detect() {
        SimdLevel::Avx512 if kernels_32 || kernels_64 => ScanImpl::FusedAvx512(RegWidth::W512),
        SimdLevel::Avx2 | SimdLevel::Avx512 if kernels_32 => ScanImpl::FusedAvx2,
        _ => ScanImpl::FusedScalar(RegWidth::W512),
    }
}

/// Run the chain with [`best_fused_impl`].
pub fn run_fused_auto<T: ScanElem>(preds: &[TypedPred<'_, T>], mode: OutputMode) -> ScanOutput {
    run_scan(best_fused_impl::<T>(), preds, mode).expect("auto impl is always available")
}

/// Dynamic entry for the query layer: a chain over [`fts_storage::Column`]s.
///
/// Homogeneous 32-bit chains dispatch to the best fused kernel; everything
/// else (mixed types, 64/16/8-bit elements) falls back to the reference
/// row loop — the query layer avoids that path by dictionary-encoding.
/// Returns `None` when a needle's type does not match its column.
pub fn scan_columns_auto(preds: &[ColumnPred<'_>], mode: OutputMode) -> Option<ScanOutput> {
    scan_columns_auto_telemetered(preds, mode, TelemetryLevel::Off).map(|(o, _)| o)
}

fn typed_preds<'a, T: ScanElem>(preds: &[ColumnPred<'a>]) -> Option<Vec<TypedPred<'a, T>>> {
    preds
        .iter()
        .map(|p| {
            Some(TypedPred::new(
                p.column.as_native::<T>()?,
                p.op,
                T::from_value(p.needle)?,
            ))
        })
        .collect()
}

/// [`scan_columns_auto`] that also collects [`ScanTelemetry`] at the
/// requested level. Homogeneous chains report the fused kernel's full
/// stage statistics; the reference fallback reports a [`TelemetryLevel::Timing`]-style
/// record (rows, bytes, wall) under the name `reference`.
pub fn scan_columns_auto_telemetered(
    preds: &[ColumnPred<'_>],
    mode: OutputMode,
    level: TelemetryLevel,
) -> Option<(ScanOutput, ScanTelemetry)> {
    let Some(first) = preds.first() else {
        return Some((
            ScanOutput::Positions(PosList::new()),
            ScanTelemetry::disabled("empty"),
        ));
    };
    let homogeneous = preds
        .iter()
        .all(|p| p.column.data_type() == first.column.data_type());
    if homogeneous && preds.len() <= fused::MAX_PREDICATES {
        macro_rules! fused_typed {
            ($t:ty) => {
                return run_scan_telemetered(
                    best_fused_impl::<$t>(),
                    &typed_preds::<$t>(preds)?,
                    mode,
                    level,
                )
                .ok()
            };
        }
        match first.column.data_type() {
            DataType::U32 => fused_typed!(u32),
            DataType::I32 => fused_typed!(i32),
            DataType::F32 => fused_typed!(f32),
            DataType::U64 => fused_typed!(u64),
            DataType::I64 => fused_typed!(i64),
            DataType::F64 => fused_typed!(f64),
            _ => {}
        }
    }
    let started = (level != TelemetryLevel::Off).then(std::time::Instant::now);
    let out = reference::scan_columns(preds)?;
    let telemetry = match started {
        None => ScanTelemetry::disabled("reference"),
        Some(started) => {
            let rows = first.column.len() as u64;
            ScanTelemetry {
                enabled: true,
                impl_name: "reference",
                rows,
                predicates: preds.len(),
                lanes: 1,
                blocks: rows,
                bytes_touched: preds
                    .iter()
                    .map(|p| rows * p.column.data_type().width() as u64)
                    .sum(),
                wall: started.elapsed(),
                morsels: 1,
                threads: 1,
                ..ScanTelemetry::default()
            }
        }
    };
    let out = match (mode, out) {
        (OutputMode::Count, o) => ScanOutput::Count(o.count()),
        (OutputMode::Positions, o) => o,
    };
    Some((out, telemetry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_storage::{CmpOp, Column, Value};

    fn all_impls() -> Vec<ScanImpl> {
        let mut v = vec![
            ScanImpl::SisdBranching,
            ScanImpl::SisdAutoVec,
            ScanImpl::BlockBitmap,
            ScanImpl::BlockSelVec,
            ScanImpl::FusedScalar(RegWidth::W128),
            ScanImpl::FusedScalar(RegWidth::W256),
            ScanImpl::FusedScalar(RegWidth::W512),
        ];
        if ScanImpl::FusedAvx2.available() {
            v.push(ScanImpl::FusedAvx2);
        }
        for w in [RegWidth::W128, RegWidth::W256, RegWidth::W512] {
            if ScanImpl::FusedAvx512(w).available() {
                v.push(ScanImpl::FusedAvx512(w));
            }
        }
        v
    }

    #[test]
    fn every_impl_agrees_u32() {
        let a: Vec<u32> = (0..2000).map(|i| i % 17).collect();
        let b: Vec<u32> = (0..2000).map(|i| (i * 5) % 11).collect();
        let preds = [
            TypedPred::new(&a[..], CmpOp::Le, 8u32),
            TypedPred::new(&b[..], CmpOp::Ne, 3u32),
        ];
        let expected = reference::scan_positions(&preds);
        for imp in all_impls() {
            let got = run_scan(imp, &preds, OutputMode::Positions).unwrap();
            assert_eq!(got.positions().unwrap(), &expected, "{}", imp.name());
            let got = run_scan(imp, &preds, OutputMode::Count).unwrap();
            assert_eq!(got.count(), expected.len() as u64, "{} count", imp.name());
        }
    }

    #[test]
    fn unsupported_type_for_hw_kernels() {
        let a = [1u16, 2, 3];
        let preds = [TypedPred::eq(&a[..], 2u16)];
        if ScanImpl::FusedAvx2.available() {
            let err = run_scan(ScanImpl::FusedAvx2, &preds, OutputMode::Count).unwrap_err();
            assert!(matches!(err, EngineError::TypeUnsupported { .. }));
        }
        // 8-byte lanes only exist at 512 bits.
        if ScanImpl::FusedAvx512(RegWidth::W128).available() {
            let b = [1u64, 2, 3];
            let p64 = [TypedPred::eq(&b[..], 2u64)];
            let err = run_scan(
                ScanImpl::FusedAvx512(RegWidth::W128),
                &p64,
                OutputMode::Count,
            )
            .unwrap_err();
            assert!(matches!(err, EngineError::TypeUnsupported { .. }));
            let ok = run_scan(
                ScanImpl::FusedAvx512(RegWidth::W512),
                &p64,
                OutputMode::Count,
            );
            assert_eq!(ok.unwrap().count(), 1);
        }
        // But the scalar fused engine handles it.
        let got = run_scan(
            ScanImpl::FusedScalar(RegWidth::W512),
            &preds,
            OutputMode::Count,
        );
        assert_eq!(got.unwrap().count(), 1);
    }

    #[test]
    fn chain_length_guard() {
        let a = [1u32];
        let preds = vec![TypedPred::eq(&a[..], 1u32); fused::MAX_PREDICATES + 1];
        let err = run_scan(ScanImpl::SisdAutoVec, &preds, OutputMode::Count).unwrap_err();
        assert_eq!(err, EngineError::ChainTooLong(fused::MAX_PREDICATES + 1));
    }

    #[test]
    fn auto_dispatch_picks_an_available_impl() {
        let imp = best_fused_impl::<u32>();
        assert!(imp.available());
        let imp64 = best_fused_impl::<u64>();
        if fts_simd::has_avx512() {
            assert_eq!(imp64, ScanImpl::FusedAvx512(RegWidth::W512));
        } else {
            assert!(matches!(imp64, ScanImpl::FusedScalar(_)));
        }
        // 8-bit types still use the scalar engine.
        assert!(matches!(best_fused_impl::<u8>(), ScanImpl::FusedScalar(_)));
    }

    #[test]
    fn column_level_dispatch() {
        let a = Column::from_vec((0..500u32).map(|i| i % 7).collect::<Vec<_>>());
        let b = Column::from_vec((0..500u32).map(|i| i % 3).collect::<Vec<_>>());
        let preds = [
            ColumnPred {
                column: &a,
                op: CmpOp::Eq,
                needle: Value::U32(2),
            },
            ColumnPred {
                column: &b,
                op: CmpOp::Eq,
                needle: Value::U32(1),
            },
        ];
        let expected = reference::scan_columns(&preds).unwrap();
        let got = scan_columns_auto(&preds, OutputMode::Positions).unwrap();
        assert_eq!(got, expected);
        let got = scan_columns_auto(&preds, OutputMode::Count).unwrap();
        assert_eq!(got.count(), expected.count());

        // Heterogeneous chain falls back to the reference loop.
        let c = Column::from_vec((0..500i64).map(|i| i % 2).collect::<Vec<_>>());
        let mixed = [
            ColumnPred {
                column: &a,
                op: CmpOp::Eq,
                needle: Value::U32(2),
            },
            ColumnPred {
                column: &c,
                op: CmpOp::Eq,
                needle: Value::I64(1),
            },
        ];
        let expected = reference::scan_columns(&mixed).unwrap();
        assert_eq!(
            scan_columns_auto(&mixed, OutputMode::Positions).unwrap(),
            expected
        );

        // Type mismatch surfaces as None.
        let bad = [ColumnPred {
            column: &a,
            op: CmpOp::Eq,
            needle: Value::I32(2),
        }];
        assert!(scan_columns_auto(&bad, OutputMode::Count).is_none());
    }

    #[test]
    fn column_level_dispatch_64bit_types() {
        let a = Column::from_vec((0..300u64).map(|i| (i % 7) + (1 << 40)).collect::<Vec<_>>());
        let b = Column::from_vec((0..300).map(|i| (i % 3) as f64 * 0.5).collect::<Vec<_>>());
        let preds64 = [ColumnPred {
            column: &a,
            op: CmpOp::Ge,
            needle: Value::U64((1 << 40) + 5),
        }];
        let expected = reference::scan_columns(&preds64).unwrap();
        assert_eq!(
            scan_columns_auto(&preds64, OutputMode::Positions).unwrap(),
            expected
        );

        let predsf = [
            ColumnPred {
                column: &b,
                op: CmpOp::Gt,
                needle: Value::F64(0.4),
            },
            ColumnPred {
                column: &b,
                op: CmpOp::Lt,
                needle: Value::F64(0.9),
            },
        ];
        let expected = reference::scan_columns(&predsf).unwrap();
        assert_eq!(
            scan_columns_auto(&predsf, OutputMode::Positions).unwrap(),
            expected
        );
    }

    #[test]
    fn names_and_availability() {
        assert_eq!(
            ScanImpl::FusedAvx512(RegWidth::W512).name(),
            "AVX-512 Fused (512)"
        );
        assert_eq!(RegWidth::W256.bits(), 256);
        assert_eq!(RegWidth::W128.lanes32(), 4);
        assert!(ScanImpl::SisdBranching.available());
        assert_eq!(ScanImpl::PAPER_FIG5.len(), 6);
    }
}
