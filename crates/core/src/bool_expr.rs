//! Boolean predicate trees over scan predicates — AND/OR/NOT — and their
//! normalization into the disjunction-of-fused-chains form the engine
//! executes.
//!
//! The paper's fused kernels evaluate *conjunctive* chains: one driver
//! predicate streaming all rows and follow-up stages gathering survivors.
//! This module generalizes the IR to arbitrary boolean trees without
//! touching the kernels, following the recipe of Kim, Ileri and Madden
//! (*Optimizing Query Predicates with Disjunctions for Column-Oriented
//! Engines*, see PAPERS.md):
//!
//! 1. **NNF** — push `NOT` down to the leaves with De Morgan's laws and
//!    eliminate it there by negating the comparison operator
//!    ([`fts_storage::CmpOp::negate`]). Exact on totally ordered domains;
//!    on float columns a NaN row fails both `p` and `¬p`, so the SQL layer
//!    documents `NOT` over floats as using operator negation (NaN rows
//!    never match either side).
//! 2. **DNF** — distribute AND over OR into a disjunction of conjunctive
//!    chains, each of which the existing fused kernels (and the JIT) can
//!    run unchanged. Expansion is capped ([`MAX_DNF_DISJUNCTS`]) because
//!    DNF can be exponential; past the cap the caller falls back to a
//!    row-at-a-time tree walk ([`reference_scan_bool`]).
//! 3. **Common-prefix factoring** — predicates present in *every* disjunct
//!    are hoisted into a shared prefix chain that runs once:
//!    `(p ∧ A) ∨ (p ∧ B) = p ∧ (A ∨ B)`. The factored prefix both saves
//!    work and gives every disjunct the same (smaller) candidate set.
//! 4. **Selectivity-driven ordering** — within a conjunct, most-selective
//!    predicate first (the usual chain rule); across disjuncts,
//!    *least*-selective first so the running union saturates early and the
//!    remaining disjuncts can be skipped once every row is covered.
//!
//! Execution ([`run_scan_bool`]) is mask combination over position lists:
//! each conjunct runs as a fused sub-chain producing a [`PosList`], the
//! disjunct lists are merged with [`PosList::union`], and a factored
//! prefix is re-applied with [`PosList::intersect`]. DESIGN.md §6
//! documents the IR grammar and these semantics.

use std::collections::HashSet;
use std::hash::Hash;

use fts_storage::{NativeType, PosList, Value};

use crate::engine::{run_scan, EngineError, ScanElem, ScanImpl};
use crate::fused;
use crate::pred::{OutputMode, ScanOutput, TypedPred};

/// Cap on the number of disjuncts produced by [`BoolExpr::to_dnf`]. DNF
/// expansion of `(a1 ∨ b1) ∧ … ∧ (an ∨ bn)` is `2^n`; past this bound the
/// planner keeps the tree form and evaluates it row-at-a-time instead.
pub const MAX_DNF_DISJUNCTS: usize = 32;

/// A boolean expression tree over leaf predicates of type `P`.
///
/// `P` is generic so the same tree machinery serves the typed core
/// ([`TypedPred`]) and the query layer's bound predicates. `And`/`Or` are
/// n-ary; an empty `And` is `true` and an empty `Or` is `false` (the usual
/// identity elements).
#[derive(Debug, Clone, PartialEq)]
pub enum BoolExpr<P> {
    /// A leaf predicate.
    Pred(P),
    /// Conjunction of sub-expressions (empty ⇒ `true`).
    And(Vec<BoolExpr<P>>),
    /// Disjunction of sub-expressions (empty ⇒ `false`).
    Or(Vec<BoolExpr<P>>),
    /// Logical negation.
    Not(Box<BoolExpr<P>>),
}

/// Why a tree could not be normalized to DNF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnfError {
    /// Expansion would exceed the disjunct cap passed to
    /// [`BoolExpr::to_dnf`].
    TooManyDisjuncts,
    /// A `Not` node survived to DNF conversion — call
    /// [`BoolExpr::to_nnf`] first.
    NotInNnf,
}

impl std::fmt::Display for DnfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnfError::TooManyDisjuncts => write!(f, "DNF expansion exceeds the disjunct cap"),
            DnfError::NotInNnf => write!(f, "tree contains NOT; normalize to NNF first"),
        }
    }
}

impl std::error::Error for DnfError {}

impl<P> BoolExpr<P> {
    /// A leaf.
    pub fn pred(p: P) -> BoolExpr<P> {
        BoolExpr::Pred(p)
    }

    /// Conjunction of `children`.
    pub fn and(children: Vec<BoolExpr<P>>) -> BoolExpr<P> {
        BoolExpr::And(children)
    }

    /// Disjunction of `children`.
    pub fn or(children: Vec<BoolExpr<P>>) -> BoolExpr<P> {
        BoolExpr::Or(children)
    }

    /// Negation of `child`. An associated constructor like [`Self::and`]
    /// and [`Self::or`], not an `ops::Not` impl — it consumes a child,
    /// not `self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(child: BoolExpr<P>) -> BoolExpr<P> {
        BoolExpr::Not(Box::new(child))
    }

    /// Evaluate the tree with short-circuiting, calling `leaf` for each
    /// leaf predicate reached. The row-at-a-time reference semantics:
    /// `Not` is the logical complement of its child's result.
    pub fn eval(&self, leaf: &mut impl FnMut(&P) -> bool) -> bool {
        match self {
            BoolExpr::Pred(p) => leaf(p),
            BoolExpr::And(cs) => cs.iter().all(|c| c.eval(leaf)),
            BoolExpr::Or(cs) => cs.iter().any(|c| c.eval(leaf)),
            BoolExpr::Not(c) => !c.eval(leaf),
        }
    }

    /// All leaf predicates, in-order.
    pub fn leaves(&self) -> Vec<&P> {
        let mut out = Vec::new();
        self.visit_leaves(&mut |p| out.push(p));
        out
    }

    fn visit_leaves<'a>(&'a self, f: &mut impl FnMut(&'a P)) {
        match self {
            BoolExpr::Pred(p) => f(p),
            BoolExpr::And(cs) | BoolExpr::Or(cs) => cs.iter().for_each(|c| c.visit_leaves(f)),
            BoolExpr::Not(c) => c.visit_leaves(f),
        }
    }

    /// Number of leaf predicates.
    pub fn leaf_count(&self) -> usize {
        match self {
            BoolExpr::Pred(_) => 1,
            BoolExpr::And(cs) | BoolExpr::Or(cs) => cs.iter().map(|c| c.leaf_count()).sum(),
            BoolExpr::Not(c) => c.leaf_count(),
        }
    }

    /// Map every leaf through `f`, preserving the tree shape.
    pub fn map<Q>(self, f: &mut impl FnMut(P) -> Q) -> BoolExpr<Q> {
        match self {
            BoolExpr::Pred(p) => BoolExpr::Pred(f(p)),
            BoolExpr::And(cs) => BoolExpr::And(cs.into_iter().map(|c| c.map(f)).collect()),
            BoolExpr::Or(cs) => BoolExpr::Or(cs.into_iter().map(|c| c.map(f)).collect()),
            BoolExpr::Not(c) => BoolExpr::Not(Box::new(c.map(f))),
        }
    }

    /// Fallible [`Self::map`]: the first `Err` aborts the walk.
    pub fn try_map<Q, E>(self, f: &mut impl FnMut(P) -> Result<Q, E>) -> Result<BoolExpr<Q>, E> {
        Ok(match self {
            BoolExpr::Pred(p) => BoolExpr::Pred(f(p)?),
            BoolExpr::And(cs) => BoolExpr::And(
                cs.into_iter()
                    .map(|c| c.try_map(f))
                    .collect::<Result<_, _>>()?,
            ),
            BoolExpr::Or(cs) => BoolExpr::Or(
                cs.into_iter()
                    .map(|c| c.try_map(f))
                    .collect::<Result<_, _>>()?,
            ),
            BoolExpr::Not(c) => BoolExpr::Not(Box::new(c.try_map(f)?)),
        })
    }

    /// Whether the tree is a pure conjunction (no `Or`/`Not` anywhere) —
    /// the linear-chain special case the pre-tree planner handled.
    pub fn is_conjunctive(&self) -> bool {
        match self {
            BoolExpr::Pred(_) => true,
            BoolExpr::And(cs) => cs.iter().all(|c| c.is_conjunctive()),
            BoolExpr::Or(_) | BoolExpr::Not(_) => false,
        }
    }

    /// Negation-normal form: push every `Not` to the leaves with De
    /// Morgan's laws and eliminate it there via `negate` (for comparison
    /// predicates, [`fts_storage::CmpOp::negate`]). Nested `And(And(..))`
    /// / `Or(Or(..))` are flattened along the way, so the result contains
    /// no `Not` nodes and no same-kind nesting.
    pub fn to_nnf(self, negate: &impl Fn(P) -> P) -> BoolExpr<P> {
        self.nnf_inner(false, negate)
    }

    fn nnf_inner(self, negated: bool, negate: &impl Fn(P) -> P) -> BoolExpr<P> {
        match (self, negated) {
            (BoolExpr::Pred(p), false) => BoolExpr::Pred(p),
            (BoolExpr::Pred(p), true) => BoolExpr::Pred(negate(p)),
            (BoolExpr::Not(c), n) => c.nnf_inner(!n, negate),
            (BoolExpr::And(cs), n) => {
                // ¬(a ∧ b) = ¬a ∨ ¬b.
                let kids = cs.into_iter().map(|c| c.nnf_inner(n, negate));
                if n {
                    BoolExpr::Or(flatten_or(kids))
                } else {
                    BoolExpr::And(flatten_and(kids))
                }
            }
            (BoolExpr::Or(cs), n) => {
                let kids = cs.into_iter().map(|c| c.nnf_inner(n, negate));
                if n {
                    BoolExpr::And(flatten_and(kids))
                } else {
                    BoolExpr::Or(flatten_or(kids))
                }
            }
        }
    }

    /// Distribute the (NNF) tree into disjunctive normal form: a list of
    /// conjunctive chains whose union is the tree's match set. Fails with
    /// [`DnfError::TooManyDisjuncts`] once more than `max_disjuncts`
    /// chains would be produced, and with [`DnfError::NotInNnf`] if a
    /// `Not` node is encountered.
    pub fn to_dnf(&self, max_disjuncts: usize) -> Result<Dnf<P>, DnfError>
    where
        P: Clone,
    {
        Ok(Dnf {
            disjuncts: self.dnf_inner(max_disjuncts)?,
        })
    }

    fn dnf_inner(&self, cap: usize) -> Result<Vec<Vec<P>>, DnfError>
    where
        P: Clone,
    {
        match self {
            BoolExpr::Pred(p) => Ok(vec![vec![p.clone()]]),
            BoolExpr::Not(_) => Err(DnfError::NotInNnf),
            BoolExpr::Or(cs) => {
                let mut out = Vec::new();
                for c in cs {
                    out.extend(c.dnf_inner(cap)?);
                    if out.len() > cap {
                        return Err(DnfError::TooManyDisjuncts);
                    }
                }
                Ok(out)
            }
            BoolExpr::And(cs) => {
                // Cross product of the children's disjunct lists.
                let mut acc: Vec<Vec<P>> = vec![vec![]];
                for c in cs {
                    let child = c.dnf_inner(cap)?;
                    if acc.len().saturating_mul(child.len()) > cap {
                        return Err(DnfError::TooManyDisjuncts);
                    }
                    let mut next = Vec::with_capacity(acc.len() * child.len());
                    for a in &acc {
                        for d in &child {
                            let mut merged = a.clone();
                            merged.extend(d.iter().cloned());
                            next.push(merged);
                        }
                    }
                    acc = next;
                }
                Ok(acc)
            }
        }
    }
}

fn flatten_and<P>(kids: impl Iterator<Item = BoolExpr<P>>) -> Vec<BoolExpr<P>> {
    let mut out = Vec::new();
    for k in kids {
        match k {
            BoolExpr::And(inner) => out.extend(inner),
            other => out.push(other),
        }
    }
    out
}

fn flatten_or<P>(kids: impl Iterator<Item = BoolExpr<P>>) -> Vec<BoolExpr<P>> {
    let mut out = Vec::new();
    for k in kids {
        match k {
            BoolExpr::Or(inner) => out.extend(inner),
            other => out.push(other),
        }
    }
    out
}

/// A tree in disjunctive normal form: the union of conjunctive chains.
/// An empty conjunct is `true`; an empty disjunct list is `false`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dnf<P> {
    /// The conjunctive chains whose union is the match set.
    pub disjuncts: Vec<Vec<P>>,
}

impl<P> Dnf<P> {
    /// Whether the disjunction is the constant `false` (no disjuncts).
    pub fn is_false(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Estimated selectivity of the whole disjunction under the
    /// independence assumption: `1 - Π(1 - sel(conjunct))`, where each
    /// conjunct's selectivity is the product of its predicates'. Clamped
    /// to `[0, 1]`; overlapping disjuncts make this an upper bound.
    pub fn selectivity(&self, sel: &impl Fn(&P) -> f64) -> f64 {
        let mut none_match = 1.0f64;
        for d in &self.disjuncts {
            none_match *= 1.0 - conjunct_selectivity(d, sel);
        }
        (1.0 - none_match).clamp(0.0, 1.0)
    }

    /// Selectivity-driven ordering (the Kim et al. cost model with
    /// selectivity as the per-chain cost proxy): within each conjunct the
    /// most selective predicate runs first (it becomes the fused chain's
    /// driver and shrinks every later gather stage); across disjuncts the
    /// *least* selective chain runs first so the running
    /// [`PosList::union`] saturates as early as possible and remaining
    /// disjuncts can be skipped once every candidate row is covered.
    /// Sorting is stable, so equal-selectivity entries keep plan order.
    pub fn order_by_selectivity(&mut self, sel: &impl Fn(&P) -> f64) {
        for d in &mut self.disjuncts {
            d.sort_by(|a, b| sel(a).total_cmp(&sel(b)));
        }
        self.disjuncts
            .sort_by(|a, b| conjunct_selectivity(b, sel).total_cmp(&conjunct_selectivity(a, sel)));
    }

    /// Hoist predicates present in **every** disjunct into a shared prefix
    /// chain: `(p ∧ A) ∨ (p ∧ B) = p ∧ (A ∨ B)`. Predicates are matched
    /// by `key` (e.g. `(column, op, literal)` — the same identity a JIT
    /// sub-chain signature uses), and one occurrence is removed from each
    /// disjunct. If factoring empties a disjunct the residual disjunction
    /// is a tautology, so the result carries no disjuncts at all
    /// (`p ∨ (p ∧ B) = p`). A single-conjunct DNF becomes pure prefix.
    ///
    /// # Panics
    /// On a constant-`false` DNF (no disjuncts): the planner never builds
    /// one — every WHERE tree has at least one leaf.
    pub fn factor<K: Eq + Hash>(self, key: &impl Fn(&P) -> K) -> FactoredDnf<P> {
        assert!(!self.is_false(), "cannot factor a constant-false DNF");
        if self.disjuncts.len() == 1 {
            return FactoredDnf {
                prefix: self.disjuncts.into_iter().next().unwrap(),
                disjuncts: Vec::new(),
            };
        }
        let mut shared: HashSet<K> = self.disjuncts[0].iter().map(key).collect();
        for d in &self.disjuncts[1..] {
            let here: HashSet<K> = d.iter().map(key).collect();
            shared.retain(|k| here.contains(k));
        }
        if shared.is_empty() {
            return FactoredDnf {
                prefix: Vec::new(),
                disjuncts: self.disjuncts,
            };
        }
        let mut prefix = Vec::new();
        let mut rest = Vec::with_capacity(self.disjuncts.len());
        let mut tautology = false;
        for (i, d) in self.disjuncts.into_iter().enumerate() {
            let mut remaining = Vec::with_capacity(d.len());
            let mut taken: HashSet<K> = HashSet::new();
            for p in d {
                let k = key(&p);
                if shared.contains(&k) && !taken.contains(&k) {
                    // First disjunct donates the hoisted instances.
                    taken.insert(k);
                    if i == 0 {
                        prefix.push(p);
                    }
                } else {
                    remaining.push(p);
                }
            }
            tautology |= remaining.is_empty();
            rest.push(remaining);
        }
        FactoredDnf {
            prefix,
            disjuncts: if tautology { Vec::new() } else { rest },
        }
    }
}

fn conjunct_selectivity<P>(conjunct: &[P], sel: &impl Fn(&P) -> f64) -> f64 {
    conjunct.iter().map(sel).product::<f64>().clamp(0.0, 1.0)
}

/// A factored DNF: `prefix ∧ (d₁ ∨ d₂ ∨ …)`, where an empty disjunct list
/// means `true` (the prefix alone decides). This is the execution plan of
/// a boolean scan: the prefix chain runs once, each disjunct chain runs
/// against the full chunk, and the results combine as
/// `prefix ∩ (d₁ ∪ d₂ ∪ …)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FactoredDnf<P> {
    /// Predicates common to every disjunct, hoisted to run once.
    pub prefix: Vec<P>,
    /// The per-disjunct residual chains (empty ⇒ `true`).
    pub disjuncts: Vec<Vec<P>>,
}

impl<P> FactoredDnf<P> {
    /// Row-at-a-time evaluation of the factored form (for differential
    /// tests against the original tree).
    pub fn matches(&self, leaf: &mut impl FnMut(&P) -> bool) -> bool {
        self.prefix.iter().all(&mut *leaf)
            && (self.disjuncts.is_empty()
                || self.disjuncts.iter().any(|d| d.iter().all(&mut *leaf)))
    }

    /// Estimated selectivity: prefix product × disjunction union estimate.
    pub fn selectivity(&self, sel: &impl Fn(&P) -> f64) -> f64 {
        let disj = if self.disjuncts.is_empty() {
            1.0
        } else {
            let mut none_match = 1.0f64;
            for d in &self.disjuncts {
                none_match *= 1.0 - conjunct_selectivity(d, sel);
            }
            (1.0 - none_match).clamp(0.0, 1.0)
        };
        (conjunct_selectivity(&self.prefix, sel) * disj).clamp(0.0, 1.0)
    }
}

impl<P: Clone> FactoredDnf<P> {
    /// The sub-chains this plan executes, prefix first — the unit of JIT
    /// compilation and of adaptive calibration (each entry gets its own
    /// kernel-cache signature and its own calibrator).
    pub fn sub_chains(&self) -> Vec<Vec<P>> {
        let mut out = Vec::with_capacity(1 + self.disjuncts.len());
        if !self.prefix.is_empty() {
            out.push(self.prefix.clone());
        }
        out.extend(self.disjuncts.iter().cloned());
        out
    }
}

/// Stable 64-bit key bits for a literal [`Value`] — float literals key by
/// IEEE bit pattern, integers by their zero/sign-extended bits. Used to
/// build hashable sub-chain identities (factoring keys, calibrator keys)
/// from predicates whose literal type is not itself `Hash`.
pub fn value_key_bits(v: Value) -> u64 {
    match v {
        Value::I8(x) => x as u8 as u64,
        Value::I16(x) => x as u16 as u64,
        Value::I32(x) => x as u32 as u64,
        Value::I64(x) => x as u64,
        Value::U8(x) => x as u64,
        Value::U16(x) => x as u64,
        Value::U32(x) => x as u64,
        Value::U64(x) => x,
        Value::F32(x) => x.to_bits() as u64,
        Value::F64(x) => x.to_bits(),
    }
}

fn typed_pred_key<T: NativeType>(p: &TypedPred<'_, T>) -> (usize, usize, fts_storage::CmpOp, u64) {
    (
        p.data.as_ptr() as usize,
        p.data.len(),
        p.op,
        value_key_bits(p.needle.to_value()),
    )
}

/// Row-at-a-time reference evaluation of a boolean tree over typed
/// predicates: the ground truth every mask-combining execution path is
/// differential-tested against. `rows` bounds the scan (all leaf columns
/// must cover at least `rows` rows); `Not` is logical complement.
pub fn reference_scan_bool<T: NativeType>(
    expr: &BoolExpr<TypedPred<'_, T>>,
    rows: usize,
) -> PosList {
    let mut out = PosList::new();
    for row in 0..rows {
        if expr.eval(&mut |p: &TypedPred<'_, T>| p.matches(row)) {
            out.push(row as u32);
        }
    }
    out
}

/// Run one conjunctive sub-chain with `imp`, splitting chains longer than
/// [`fused::MAX_PREDICATES`] into fused segments joined by
/// [`PosList::intersect`]. An empty conjunct is `true` → all `rows`.
pub fn scan_conjunct<T: ScanElem>(
    imp: ScanImpl,
    preds: &[TypedPred<'_, T>],
    rows: usize,
) -> Result<PosList, EngineError> {
    if preds.is_empty() {
        return Ok((0..rows as u32).collect());
    }
    let mut acc: Option<PosList> = None;
    for part in preds.chunks(fused::MAX_PREDICATES) {
        let out = run_scan(imp, part, OutputMode::Positions)?;
        let pl = match out {
            ScanOutput::Positions(p) => p,
            ScanOutput::Count(_) => unreachable!("positions mode returns positions"),
        };
        acc = Some(match acc {
            None => pl,
            Some(a) => a.intersect(&pl),
        });
        if acc.as_ref().is_some_and(|a| a.is_empty()) {
            break;
        }
    }
    Ok(acc.expect("non-empty chain"))
}

/// Execute a factored DNF as mask combination of fused sub-chains:
/// the prefix chain once, then each disjunct chain united into a running
/// [`PosList::union`] (skipping the rest once the union saturates at
/// `rows`), finally intersected with the prefix's positions.
pub fn scan_factored<T: ScanElem>(
    imp: ScanImpl,
    plan: &FactoredDnf<TypedPred<'_, T>>,
    rows: usize,
) -> Result<PosList, EngineError> {
    let prefix = if plan.prefix.is_empty() {
        None
    } else {
        let p = scan_conjunct(imp, &plan.prefix, rows)?;
        if p.is_empty() {
            return Ok(PosList::new());
        }
        Some(p)
    };
    if plan.disjuncts.is_empty() {
        return Ok(prefix.unwrap_or_else(|| (0..rows as u32).collect()));
    }
    let mut acc = PosList::new();
    for d in &plan.disjuncts {
        if acc.len() == rows {
            break; // union saturated — every row already matches
        }
        acc = acc.union(&scan_conjunct(imp, d, rows)?);
    }
    Ok(match prefix {
        Some(p) => p.intersect(&acc),
        None => acc,
    })
}

/// Run a boolean predicate tree with the chosen implementation.
///
/// The tree is normalized (NNF via operator negation, DNF, common-prefix
/// factoring) and executed as mask combination of fused sub-chains; if
/// DNF expansion exceeds [`MAX_DNF_DISJUNCTS`] the original tree is
/// evaluated row-at-a-time instead (still correct, just unfused).
///
/// ```
/// use fts_core::{run_scan_bool, BoolExpr, OutputMode, RegWidth, ScanImpl, TypedPred};
///
/// let a: Vec<u32> = (0..100).collect();
/// let b: Vec<u32> = (0..100).map(|i| i % 10).collect();
/// // a < 3 OR (NOT a < 97 AND b = 5)
/// let expr = BoolExpr::or(vec![
///     BoolExpr::pred(TypedPred::new(&a[..], fts_storage::CmpOp::Lt, 3u32)),
///     BoolExpr::and(vec![
///         BoolExpr::not(BoolExpr::pred(TypedPred::new(&a[..], fts_storage::CmpOp::Lt, 97u32))),
///         BoolExpr::pred(TypedPred::new(&b[..], fts_storage::CmpOp::Eq, 5u32)),
///     ]),
/// ]);
/// let out = run_scan_bool(ScanImpl::FusedScalar(RegWidth::W512), &expr, OutputMode::Count)
///     .unwrap();
/// assert_eq!(out.count(), 3); // rows 0,1,2 (a<3); rows 97..100 have b∈{7,8,9}
/// ```
pub fn run_scan_bool<T: ScanElem>(
    imp: ScanImpl,
    expr: &BoolExpr<TypedPred<'_, T>>,
    mode: OutputMode,
) -> Result<ScanOutput, EngineError> {
    let rows = expr.leaves().first().map_or(0, |p| p.data.len());
    let nnf = expr.clone().to_nnf(&|p: TypedPred<'_, T>| TypedPred {
        data: p.data,
        op: p.op.negate(),
        needle: p.needle,
    });
    let positions = match nnf.to_dnf(MAX_DNF_DISJUNCTS) {
        Ok(dnf) if !dnf.is_false() => {
            let plan = dnf.factor(&typed_pred_key::<T>);
            scan_factored(imp, &plan, rows)?
        }
        Ok(_) => PosList::new(),
        Err(DnfError::TooManyDisjuncts) => reference_scan_bool(&nnf, rows),
        Err(DnfError::NotInNnf) => unreachable!("to_nnf eliminates every NOT"),
    };
    Ok(match mode {
        OutputMode::Count => ScanOutput::Count(positions.len() as u64),
        OutputMode::Positions => ScanOutput::Positions(positions),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RegWidth;
    use fts_storage::CmpOp;

    fn leaf(n: u32) -> BoolExpr<u32> {
        BoolExpr::pred(n)
    }

    #[test]
    fn eval_short_circuits_the_tree() {
        // (1 ∧ ¬2) ∨ 3 with leaves true iff even.
        let e = BoolExpr::or(vec![
            BoolExpr::and(vec![leaf(2), BoolExpr::not(leaf(3))]),
            leaf(4),
        ]);
        assert!(e.eval(&mut |&p| p % 2 == 0));
        assert!(!e.eval(&mut |&p| p % 2 == 1));
        assert_eq!(e.leaf_count(), 3);
        assert_eq!(e.leaves(), vec![&2, &3, &4]);
        assert!(!e.is_conjunctive());
        assert!(BoolExpr::and(vec![leaf(1), leaf(2)]).is_conjunctive());
    }

    #[test]
    fn nnf_pushes_not_to_leaves() {
        // ¬((1 ∨ 2) ∧ ¬3) = (¬1 ∧ ¬2) ∨ 3 — leaves negated via +100.
        let e = BoolExpr::not(BoolExpr::and(vec![
            BoolExpr::or(vec![leaf(1), leaf(2)]),
            BoolExpr::not(leaf(3)),
        ]));
        let nnf = e.to_nnf(&|p| p + 100);
        assert_eq!(
            nnf,
            BoolExpr::Or(vec![BoolExpr::And(vec![leaf(101), leaf(102)]), leaf(3),])
        );
    }

    #[test]
    fn nnf_flattens_nested_same_kind() {
        let e = BoolExpr::and(vec![BoolExpr::and(vec![leaf(1), leaf(2)]), leaf(3)]);
        assert_eq!(
            e.to_nnf(&|p| p),
            BoolExpr::And(vec![leaf(1), leaf(2), leaf(3)])
        );
    }

    #[test]
    fn dnf_distributes_and_over_or() {
        // (1 ∨ 2) ∧ 3 = (1 ∧ 3) ∨ (2 ∧ 3).
        let e = BoolExpr::and(vec![BoolExpr::or(vec![leaf(1), leaf(2)]), leaf(3)]);
        let dnf = e.to_dnf(16).unwrap();
        assert_eq!(dnf.disjuncts, vec![vec![1, 3], vec![2, 3]]);
    }

    #[test]
    fn dnf_cap_and_nnf_requirement() {
        // (1∨2) ∧ (3∨4) ∧ (5∨6) has 8 disjuncts — a cap of 4 rejects it.
        let e = BoolExpr::and(vec![
            BoolExpr::or(vec![leaf(1), leaf(2)]),
            BoolExpr::or(vec![leaf(3), leaf(4)]),
            BoolExpr::or(vec![leaf(5), leaf(6)]),
        ]);
        assert_eq!(e.to_dnf(4), Err(DnfError::TooManyDisjuncts));
        assert_eq!(e.to_dnf(8).unwrap().disjuncts.len(), 8);
        assert_eq!(BoolExpr::not(leaf(1)).to_dnf(4), Err(DnfError::NotInNnf));
    }

    #[test]
    fn factor_hoists_common_prefix() {
        // (1∧2) ∨ (1∧3): 1 is shared.
        let dnf = Dnf {
            disjuncts: vec![vec![1, 2], vec![1, 3]],
        };
        let f = dnf.factor(&|&p| p);
        assert_eq!(f.prefix, vec![1]);
        assert_eq!(f.disjuncts, vec![vec![2], vec![3]]);
    }

    #[test]
    fn factor_detects_tautology_and_single_conjunct() {
        // 1 ∨ (1∧2) = 1.
        let dnf = Dnf {
            disjuncts: vec![vec![1], vec![1, 2]],
        };
        let f = dnf.factor(&|&p| p);
        assert_eq!(f.prefix, vec![1]);
        assert!(f.disjuncts.is_empty());

        let single = Dnf {
            disjuncts: vec![vec![4, 5]],
        };
        let f = single.factor(&|&p| p);
        assert_eq!(f.prefix, vec![4, 5]);
        assert!(f.disjuncts.is_empty());
        assert_eq!(f.sub_chains(), vec![vec![4, 5]]);
    }

    #[test]
    fn factored_matches_agrees_with_tree() {
        let e = BoolExpr::or(vec![
            BoolExpr::and(vec![leaf(1), leaf(2)]),
            BoolExpr::and(vec![leaf(1), leaf(3)]),
        ]);
        let f = e.to_dnf(16).unwrap().factor(&|&p| p);
        for bits in 0u32..16 {
            let mut truth = |p: &u32| bits & (1 << (p - 1)) != 0;
            assert_eq!(e.eval(&mut truth), f.matches(&mut truth), "bits={bits:04b}");
        }
    }

    #[test]
    fn ordering_sorts_disjuncts_and_conjuncts() {
        let mut dnf = Dnf {
            disjuncts: vec![vec![1, 2], vec![3]],
        };
        // sel: 1→0.9, 2→0.1, 3→0.5; conjunct sels: 0.09 and 0.5.
        let sel = |p: &u32| match p {
            1 => 0.9,
            2 => 0.1,
            _ => 0.5,
        };
        dnf.order_by_selectivity(&sel);
        // Least selective disjunct first; most selective pred first inside.
        assert_eq!(dnf.disjuncts, vec![vec![3], vec![2, 1]]);
        assert!((dnf.selectivity(&sel) - (1.0 - 0.5 * 0.91)).abs() < 1e-12);
    }

    #[test]
    fn selectivity_estimates_clamp() {
        let dnf = Dnf {
            disjuncts: vec![vec![1], vec![2], vec![3]],
        };
        assert!((dnf.selectivity(&|_| 1.0) - 1.0).abs() < f64::EPSILON);
        assert!((dnf.selectivity(&|_| 0.0)).abs() < f64::EPSILON);
        let f = FactoredDnf {
            prefix: vec![1],
            disjuncts: vec![],
        };
        assert!((f.selectivity(&|_| 0.25) - 0.25).abs() < f64::EPSILON);
    }

    #[test]
    fn value_key_bits_distinguish_and_stabilize() {
        assert_eq!(value_key_bits(Value::U32(5)), 5);
        assert_eq!(value_key_bits(Value::I32(-1)), u32::MAX as u64);
        assert_eq!(value_key_bits(Value::F64(1.5)), 1.5f64.to_bits());
        assert_ne!(
            value_key_bits(Value::F32(1.0)),
            value_key_bits(Value::F32(-1.0))
        );
    }

    #[test]
    fn run_scan_bool_matches_reference_all_impls() {
        let a: Vec<u32> = (0..512).map(|i| i % 13).collect();
        let b: Vec<u32> = (0..512).map(|i| (i * 7) % 5).collect();
        // (a < 4 AND b = 1) OR NOT (a < 11) OR (a = 6 AND b > 2)
        let expr = BoolExpr::or(vec![
            BoolExpr::and(vec![
                BoolExpr::pred(TypedPred::new(&a[..], CmpOp::Lt, 4u32)),
                BoolExpr::pred(TypedPred::new(&b[..], CmpOp::Eq, 1u32)),
            ]),
            BoolExpr::not(BoolExpr::pred(TypedPred::new(&a[..], CmpOp::Lt, 11u32))),
            BoolExpr::and(vec![
                BoolExpr::pred(TypedPred::new(&a[..], CmpOp::Eq, 6u32)),
                BoolExpr::pred(TypedPred::new(&b[..], CmpOp::Gt, 2u32)),
            ]),
        ]);
        let expected = reference_scan_bool(&expr, a.len());
        assert!(!expected.is_empty());
        let mut impls = vec![
            ScanImpl::SisdBranching,
            ScanImpl::SisdAutoVec,
            ScanImpl::FusedScalar(RegWidth::W128),
            ScanImpl::FusedScalar(RegWidth::W512),
        ];
        impls.retain(|i| i.available());
        if ScanImpl::FusedAvx2.available() {
            impls.push(ScanImpl::FusedAvx2);
        }
        if ScanImpl::FusedAvx512(RegWidth::W512).available() {
            impls.push(ScanImpl::FusedAvx512(RegWidth::W512));
        }
        for imp in impls {
            let got = run_scan_bool(imp, &expr, OutputMode::Positions).unwrap();
            assert_eq!(got.positions().unwrap(), &expected, "{}", imp.name());
            let got = run_scan_bool(imp, &expr, OutputMode::Count).unwrap();
            assert_eq!(got.count(), expected.len() as u64, "{} count", imp.name());
        }
    }

    #[test]
    fn run_scan_bool_dnf_blowup_falls_back() {
        // 6 binary ORs ANDed together: 64 disjuncts > MAX_DNF_DISJUNCTS.
        let a: Vec<u32> = (0..128).map(|i| i % 8).collect();
        let ors: Vec<BoolExpr<TypedPred<'_, u32>>> = (0..6)
            .map(|k| {
                BoolExpr::or(vec![
                    BoolExpr::pred(TypedPred::new(&a[..], CmpOp::Eq, k as u32)),
                    BoolExpr::pred(TypedPred::new(&a[..], CmpOp::Eq, (k + 1) as u32)),
                ])
            })
            .collect();
        let expr = BoolExpr::and(ors);
        let expected = reference_scan_bool(&expr, a.len());
        let got = run_scan_bool(
            ScanImpl::FusedScalar(RegWidth::W512),
            &expr,
            OutputMode::Positions,
        )
        .unwrap();
        assert_eq!(got.positions().unwrap(), &expected);
    }

    #[test]
    fn long_conjunct_splits_across_fused_segments() {
        let a: Vec<u32> = (0..256).collect();
        // MAX_PREDICATES + 3 predicates, all satisfied by rows 100..=150.
        let mut preds = vec![
            TypedPred::new(&a[..], CmpOp::Ge, 100u32),
            TypedPred::new(&a[..], CmpOp::Le, 150u32),
        ];
        for k in 0..fused::MAX_PREDICATES + 1 {
            preds.push(TypedPred::new(&a[..], CmpOp::Ne, k as u32));
        }
        let got = scan_conjunct(ScanImpl::FusedScalar(RegWidth::W512), &preds, a.len()).unwrap();
        assert_eq!(got.as_slice(), (100u32..=150).collect::<Vec<_>>());
    }
}
