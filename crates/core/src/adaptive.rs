//! Adaptive kernel selection: plan-time cost model + runtime calibration.
//!
//! The paper's fused AVX-512 scan wins most selectivity × chain-length
//! configurations — but not all of them (Fig. 5 shows SISD auto-vec ahead
//! on long low-selectivity chains, and narrower registers ahead when the
//! gather stages dominate). A static kernel choice is therefore wrong in a
//! minority of configurations. This module closes the loop in two stages:
//!
//! 1. **Plan-time cost model** ([`rank_scan_impls`]): from a
//!    [`ChainProfile`] (estimated per-predicate selectivity, column width
//!    and encoding — the query layer seeds this from catalog stats) and
//!    the measured peak bandwidth ([`crate::stride::peak_bandwidth_gbps`]),
//!    estimate each candidate kernel's bytes-over-the-bus and instruction
//!    cost, and rank by the max of the two (a scan runs at the speed of
//!    whichever resource saturates first — the decode-throughput law).
//! 2. **Runtime calibration** ([`Calibrator`]): the first few morsels are
//!    distributed round-robin across the top-ranked candidates with
//!    per-morsel timing; the fastest observed kernel then runs the
//!    remainder. If the observed chain selectivity drifts from the
//!    estimate by more than a threshold, the calibrator re-probes.
//!
//! The [`Calibrator`] is a pure state machine — timings are injected via
//! [`Calibrator::observe`], so the protocol is deterministic and unit
//! testable without a clock. [`run_scan_adaptive`] drives it with real
//! measurements over [`crate::engine::run_scan`] morsels.

use std::time::Instant;

use fts_storage::PosList;

use crate::engine::{best_fused_impl, EngineError, RegWidth, ScanElem, ScanImpl};
use crate::parallel::{run_scan_parallel_telemetered, DEFAULT_MORSEL_ROWS};
use crate::pred::{OutputMode, ScanOutput, TypedPred};
use crate::telemetry::{BoundVerdict, ScanTelemetry, TelemetryLevel};
use fts_simd::{detect, SimdLevel};
use fts_storage::DataType;

/// Physical encoding of a scanned column, as seen by the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Encoding {
    /// Uncompressed native values.
    Plain,
    /// Dictionary-encoded: the scan runs over 4-byte value ids.
    Dict,
    /// Bit-packed value ids at `bits` bits per value (the compressed-domain
    /// kernel streams `bits/8` bytes per value instead of 4).
    Packed {
        /// Bits per packed value id.
        bits: u8,
    },
}

impl Encoding {
    /// Bytes the driver loop streams per value under this encoding when
    /// the logical value width is `width_bytes`.
    pub fn bytes_per_value(self, width_bytes: u32) -> f64 {
        match self {
            Encoding::Plain => width_bytes as f64,
            Encoding::Dict => 4.0,
            Encoding::Packed { bits } => bits as f64 / 8.0,
        }
    }
}

/// Cost-model view of one predicate in a scan chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredProfile {
    /// Estimated selectivity of this predicate alone, in `[0, 1]`.
    pub selectivity: f64,
    /// Width of the scanned element in bytes (4 for the u32 kernels).
    pub width_bytes: u32,
    /// Physical encoding of the column.
    pub encoding: Encoding,
}

impl PredProfile {
    /// A plain 4-byte predicate with the given selectivity estimate.
    pub fn plain_u32(selectivity: f64) -> PredProfile {
        PredProfile {
            selectivity: selectivity.clamp(0.0, 1.0),
            width_bytes: 4,
            encoding: Encoding::Plain,
        }
    }
}

/// Cost-model view of a whole scan chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainProfile {
    /// Rows the chain scans.
    pub rows: u64,
    /// Per-predicate profiles, in evaluation order.
    pub preds: Vec<PredProfile>,
}

impl ChainProfile {
    /// A chain of `n` plain 4-byte predicates, each at selectivity `sel`.
    pub fn uniform_u32(rows: u64, n: usize, sel: f64) -> ChainProfile {
        ChainProfile {
            rows,
            preds: vec![PredProfile::plain_u32(sel); n.max(1)],
        }
    }

    /// Expected rows surviving predicates `0..=k` (cumulative product of
    /// the selectivity estimates).
    pub fn prefix_survivors(&self) -> Vec<f64> {
        let mut acc = self.rows as f64;
        self.preds
            .iter()
            .map(|p| {
                acc *= p.selectivity.clamp(0.0, 1.0);
                acc
            })
            .collect()
    }

    /// Expected fraction of rows surviving the whole chain.
    pub fn expected_selectivity(&self) -> f64 {
        self.preds
            .iter()
            .map(|p| p.selectivity.clamp(0.0, 1.0))
            .product()
    }
}

/// Cost-model constants: rough per-value instruction costs in nanoseconds,
/// calibrated to the shapes of paper Fig. 5 rather than to any particular
/// machine — the runtime calibration corrects the absolute numbers, the
/// model only has to get the *ranking* roughly right.
mod ns {
    /// Branching SISD compare (unpredictable-branch loop, never
    /// auto-vectorized).
    pub const SISD_BRANCH: f64 = 1.0;
    /// Extra cost of one mispredicted branch.
    pub const BRANCH_MISS: f64 = 8.0;
    /// Branch-free auto-vectorized compare, per value per predicate.
    pub const SISD_AUTOVEC: f64 = 0.25;
    /// Block-at-a-time compare plus intermediate materialization.
    pub const BLOCKWISE: f64 = 0.35;
    /// Interpreted scalar model engine (per driver value / per gathered
    /// survivor).
    pub const FUSED_SCALAR: f64 = 1.5;
    /// AVX2 fused driver per value (emulated compress).
    pub const AVX2_DRIVER: f64 = 0.12;
    /// AVX-512 fused driver per value at 512-bit width; narrower widths
    /// scale inversely with lane count.
    pub const AVX512_DRIVER_W512: f64 = 0.04;
    /// Masked gather + compare per surviving row (follow-up stages).
    pub const GATHER: f64 = 0.35;
    /// Compressed-domain unpack + compare per value.
    pub const PACKED: f64 = 0.10;
}

/// A cost estimate for running one kernel over one [`ChainProfile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated wall time in nanoseconds: `max(memory_ns, compute_ns)`.
    pub est_ns: f64,
    /// Bytes the kernel is modeled to move over the memory bus.
    pub bytes: f64,
    /// Time to move [`CostEstimate::bytes`] at peak bandwidth.
    pub memory_ns: f64,
    /// Modeled instruction cost.
    pub compute_ns: f64,
}

impl CostEstimate {
    fn from_parts(bytes: f64, compute_ns: f64, peak_gbps: f64) -> CostEstimate {
        // 1 GB/s = 1 byte/ns, so bytes / GB/s is already nanoseconds.
        let memory_ns = bytes / peak_gbps.max(1e-3);
        CostEstimate {
            est_ns: memory_ns.max(compute_ns),
            bytes,
            memory_ns,
            compute_ns,
        }
    }

    /// Which resource the model predicts will saturate first.
    pub fn verdict(&self) -> BoundVerdict {
        if self.memory_ns >= self.compute_ns {
            BoundVerdict::BandwidthBound
        } else {
            BoundVerdict::ComputeBound
        }
    }
}

/// Estimate the cost of one [`ScanImpl`] over `profile` against a machine
/// whose peak sequential read bandwidth is `peak_gbps`.
///
/// Bytes model (consistent with [`crate::telemetry::collect`]):
/// * branching SISD — predicate `k` reads only the survivors of `0..k`;
/// * auto-vec / blockwise — every predicate reads every row;
/// * fused — the driver streams all rows once, each follow-up stage
///   gathers exactly the previous predicate's survivors.
pub fn estimate_cost(imp: ScanImpl, profile: &ChainProfile, peak_gbps: f64) -> CostEstimate {
    let rows = profile.rows as f64;
    let survivors = profile.prefix_survivors();
    let first = profile.preds.first().copied().unwrap_or(PredProfile {
        selectivity: 1.0,
        width_bytes: 4,
        encoding: Encoding::Plain,
    });
    let width = first.encoding.bytes_per_value(first.width_bytes);
    // Rows evaluated by predicate k: all rows for k = 0, then the
    // survivors of the prefix before it.
    let evaluated = |k: usize| -> f64 {
        if k == 0 {
            rows
        } else {
            survivors[k - 1]
        }
    };
    let all_pred_bytes: f64 = profile
        .preds
        .iter()
        .map(|p| rows * p.encoding.bytes_per_value(p.width_bytes))
        .sum();

    match imp {
        ScanImpl::SisdBranching => {
            let mut bytes = 0.0;
            let mut compute = 0.0;
            for (k, p) in profile.preds.iter().enumerate() {
                let n = evaluated(k);
                let s = p.selectivity.clamp(0.0, 1.0);
                bytes += n * p.encoding.bytes_per_value(p.width_bytes);
                // Short-circuit branch per evaluated value; mispredict
                // probability 2·s·(1−s) for a branch taken with rate s.
                compute += n * (ns::SISD_BRANCH + 2.0 * s * (1.0 - s) * ns::BRANCH_MISS);
            }
            CostEstimate::from_parts(bytes, compute, peak_gbps)
        }
        ScanImpl::SisdAutoVec => CostEstimate::from_parts(
            all_pred_bytes,
            rows * profile.preds.len() as f64 * ns::SISD_AUTOVEC,
            peak_gbps,
        ),
        ScanImpl::BlockBitmap | ScanImpl::BlockSelVec => CostEstimate::from_parts(
            // Bitmask / selection-vector intermediates add one byte-ish
            // per row per predicate on top of the column reads.
            all_pred_bytes + rows * profile.preds.len() as f64,
            rows * profile.preds.len() as f64 * ns::BLOCKWISE,
            peak_gbps,
        ),
        ScanImpl::FusedScalar(_) | ScanImpl::FusedAvx2 | ScanImpl::FusedAvx512(_) => {
            let (driver_ns, gather_ns) = match imp {
                ScanImpl::FusedScalar(_) => (ns::FUSED_SCALAR, ns::FUSED_SCALAR),
                ScanImpl::FusedAvx2 => (ns::AVX2_DRIVER, ns::GATHER),
                ScanImpl::FusedAvx512(w) => (
                    ns::AVX512_DRIVER_W512 * (RegWidth::W512.lanes32() as f64)
                        / (w.lanes32() as f64),
                    ns::GATHER,
                ),
                _ => unreachable!(),
            };
            let mut bytes = rows * width;
            let mut compute = rows * driver_ns;
            for (k, p) in profile.preds.iter().enumerate().skip(1) {
                let n = evaluated(k);
                bytes += n * p.encoding.bytes_per_value(p.width_bytes);
                compute += n * gather_ns;
            }
            CostEstimate::from_parts(bytes, compute, peak_gbps)
        }
    }
}

/// Estimate the cost of the compressed-domain (bit-packed) fused kernel
/// over `profile`. Meaningful when the chain's columns are
/// [`Encoding::Packed`]: the driver streams `bits/8` bytes per value, so
/// the kernel trades extra unpack instructions for a fraction of the
/// memory traffic.
pub fn estimate_packed_cost(profile: &ChainProfile, peak_gbps: f64) -> CostEstimate {
    let rows = profile.rows as f64;
    let survivors = profile.prefix_survivors();
    let mut bytes = 0.0;
    let mut compute = 0.0;
    for (k, p) in profile.preds.iter().enumerate() {
        let n = if k == 0 { rows } else { survivors[k - 1] };
        bytes += n * p.encoding.bytes_per_value(p.width_bytes);
        compute += n * if k == 0 { ns::PACKED } else { ns::GATHER };
    }
    CostEstimate::from_parts(bytes, compute, peak_gbps)
}

/// A kernel with its plan-time cost estimate, as produced by
/// [`rank_scan_impls`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedKernel<C> {
    /// The candidate kernel.
    pub kernel: C,
    /// Its modeled cost.
    pub cost: CostEstimate,
}

/// The [`ScanImpl`]s the selector considers for element type `T` on this
/// host: SISD auto-vec always; the AVX2 backport and the AVX-512 widths
/// when the ISA ([`fts_simd::detect()`]) and the element type support them;
/// the portable scalar engine only when no hardware kernel exists.
pub fn candidate_scan_impls<T: ScanElem>() -> Vec<ScanImpl> {
    let kernels_32 = matches!(T::DATA_TYPE, DataType::U32 | DataType::I32 | DataType::F32);
    let kernels_64 = matches!(T::DATA_TYPE, DataType::U64 | DataType::I64 | DataType::F64);
    let mut v = vec![ScanImpl::SisdBranching, ScanImpl::SisdAutoVec];
    if detect() >= SimdLevel::Avx2 && kernels_32 {
        v.push(ScanImpl::FusedAvx2);
    }
    if detect() >= SimdLevel::Avx512 {
        if kernels_32 {
            v.push(ScanImpl::FusedAvx512(RegWidth::W128));
            v.push(ScanImpl::FusedAvx512(RegWidth::W256));
        }
        if kernels_32 || kernels_64 {
            v.push(ScanImpl::FusedAvx512(RegWidth::W512));
        }
    }
    if v.len() == 2 && !kernels_32 && !kernels_64 {
        // No hardware kernel for this type: the portable fused engine is
        // still a candidate (it skips follow-up columns like the real one).
        v.push(ScanImpl::FusedScalar(RegWidth::W512));
    }
    v
}

/// Rank `candidates` by modeled cost, cheapest first.
pub fn rank_scan_impls(
    candidates: &[ScanImpl],
    profile: &ChainProfile,
    peak_gbps: f64,
) -> Vec<RankedKernel<ScanImpl>> {
    let mut ranked: Vec<RankedKernel<ScanImpl>> = candidates
        .iter()
        .map(|&imp| RankedKernel {
            kernel: imp,
            cost: estimate_cost(imp, profile, peak_gbps),
        })
        .collect();
    // Bandwidth-bound profiles tie every vector kernel at `memory_ns`;
    // break those ties by compute headroom so the calibrator still probes
    // the compute-fastest kernels first (a stable sort would otherwise
    // freeze the enumeration order and can push the best kernel out of
    // the probed top-K entirely).
    ranked.sort_by(|a, b| {
        a.cost
            .est_ns
            .total_cmp(&b.cost.est_ns)
            .then(a.cost.compute_ns.total_cmp(&b.cost.compute_ns))
    });
    ranked
}

/// Tuning knobs for the calibration protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// Morsels each candidate is timed on before a winner is picked.
    pub probes_per_candidate: usize,
    /// How many of the top-ranked kernels enter calibration.
    pub top_candidates: usize,
    /// Relative selectivity drift that triggers a re-probe
    /// (`|observed − expected| > max(threshold · expected, floor)`).
    pub drift_threshold: f64,
    /// Absolute drift floor, so near-zero estimates don't re-probe on
    /// noise.
    pub drift_floor: f64,
    /// Rows of steady-state scanning between drift checks.
    pub recheck_rows: u64,
}

impl Default for CalibrationConfig {
    fn default() -> CalibrationConfig {
        CalibrationConfig {
            probes_per_candidate: 1,
            top_candidates: 3,
            drift_threshold: 0.5,
            drift_floor: 0.02,
            recheck_rows: 32 * DEFAULT_MORSEL_ROWS as u64,
        }
    }
}

/// Measured probe statistics for one candidate kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateStats<C> {
    /// The kernel.
    pub kernel: C,
    /// Probe morsels timed on it.
    pub morsels: u64,
    /// Rows those morsels covered.
    pub rows: u64,
    /// Summed wall time of those morsels in nanoseconds.
    pub wall_ns: u64,
}

impl<C> CandidateStats<C> {
    /// Measured scan throughput in values per microsecond.
    pub fn values_per_us(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.rows as f64 * 1e3 / self.wall_ns as f64
        }
    }
}

/// Everything the calibrator learned, for `EXPLAIN ANALYZE` and reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport<C> {
    /// Per-candidate probe measurements, in ranked order.
    pub candidates: Vec<CandidateStats<C>>,
    /// The kernel that won calibration (None if the scan ended mid-probe).
    pub winner: Option<C>,
    /// Times drift forced calibration to restart.
    pub reprobes: u32,
    /// The selectivity estimate the calibrator currently holds.
    pub expected_selectivity: f64,
    /// Overall observed selectivity across everything scanned so far.
    pub observed_selectivity: f64,
}

/// Which kernel the calibrator wants next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Phase<C> {
    /// Still probing: run the next morsel on this candidate, timed.
    Calibrating(C),
    /// A winner is chosen: run the remainder on it.
    Steady(C),
}

/// The calibration state machine. Generic over the kernel handle `C` so
/// the query layer can calibrate across JIT and engine kernels with one
/// protocol; deterministic because all timings arrive via
/// [`Calibrator::observe`].
#[derive(Debug, Clone)]
pub struct Calibrator<C: Copy + PartialEq> {
    candidates: Vec<CandidateStats<C>>,
    cfg: CalibrationConfig,
    expected_selectivity: f64,
    winner: Option<usize>,
    /// Each candidate must reach this many probe morsels before a winner
    /// is picked; re-probes raise it.
    probe_target: u64,
    window_rows: u64,
    window_matches: u64,
    total_rows: u64,
    total_matches: u64,
    reprobes: u32,
}

impl<C: Copy + PartialEq> Calibrator<C> {
    /// Build a calibrator over `ranked` kernels (best-estimate first; only
    /// the first [`CalibrationConfig::top_candidates`] are probed).
    /// `expected_selectivity` is the plan-time estimate of the fraction of
    /// rows surviving the whole chain.
    pub fn new(ranked: &[C], expected_selectivity: f64, cfg: CalibrationConfig) -> Calibrator<C> {
        assert!(!ranked.is_empty(), "calibrator needs at least one kernel");
        let candidates: Vec<CandidateStats<C>> = ranked
            .iter()
            .take(cfg.top_candidates.max(1))
            .map(|&kernel| CandidateStats {
                kernel,
                morsels: 0,
                rows: 0,
                wall_ns: 0,
            })
            .collect();
        let single = candidates.len() == 1 || cfg.probes_per_candidate == 0;
        Calibrator {
            winner: single.then_some(0),
            probe_target: cfg.probes_per_candidate as u64,
            candidates,
            cfg,
            expected_selectivity: expected_selectivity.clamp(0.0, 1.0),
            window_rows: 0,
            window_matches: 0,
            total_rows: 0,
            total_matches: 0,
            reprobes: 0,
        }
    }

    /// What to run next: a probe candidate (fewest probe morsels so far,
    /// ties broken by rank) or the steady-state winner.
    pub fn phase(&self) -> Phase<C> {
        match self.winner {
            Some(i) => Phase::Steady(self.candidates[i].kernel),
            None => {
                let i = self
                    .candidates
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, c)| c.morsels)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                Phase::Calibrating(self.candidates[i].kernel)
            }
        }
    }

    /// The chosen kernel, once calibration has converged.
    pub fn winner(&self) -> Option<C> {
        self.winner.map(|i| self.candidates[i].kernel)
    }

    /// Feed back what one unit of scanning did: `rows` scanned by
    /// `kernel` in `wall_ns`, of which `matches` survived the chain.
    ///
    /// During probing the measurement updates the candidate's stats and,
    /// once every candidate reached the probe target, picks the winner
    /// (highest measured values/µs). In steady state the rows/matches
    /// feed the drift window; when the window covers
    /// [`CalibrationConfig::recheck_rows`], a drift beyond the threshold
    /// resets the protocol to probing with the observed selectivity as
    /// the new expectation.
    pub fn observe(&mut self, kernel: C, rows: u64, wall_ns: u64, matches: u64) {
        self.total_rows += rows;
        self.total_matches += matches;
        self.window_rows += rows;
        self.window_matches += matches;
        match self.winner {
            None => {
                if let Some(c) = self.candidates.iter_mut().find(|c| c.kernel == kernel) {
                    c.morsels += 1;
                    c.rows += rows;
                    c.wall_ns += wall_ns;
                }
                if self
                    .candidates
                    .iter()
                    .all(|c| c.morsels >= self.probe_target)
                {
                    let best = self
                        .candidates
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| a.values_per_us().total_cmp(&b.values_per_us()))
                        .map(|(i, _)| i);
                    self.winner = best;
                    // Calibration just measured the real selectivity;
                    // adopt it and restart the drift window.
                    if self.window_rows > 0 {
                        self.expected_selectivity =
                            self.window_matches as f64 / self.window_rows as f64;
                    }
                    self.window_rows = 0;
                    self.window_matches = 0;
                }
            }
            Some(_) => {
                if self.window_rows >= self.cfg.recheck_rows {
                    let observed = self.window_matches as f64 / self.window_rows as f64;
                    let drift = (observed - self.expected_selectivity).abs();
                    let allowed = (self.cfg.drift_threshold * self.expected_selectivity)
                        .max(self.cfg.drift_floor);
                    if drift > allowed {
                        self.winner = None;
                        self.probe_target += self.cfg.probes_per_candidate.max(1) as u64;
                        self.expected_selectivity = observed;
                        self.reprobes += 1;
                    }
                    self.window_rows = 0;
                    self.window_matches = 0;
                }
            }
        }
    }

    /// Snapshot of what calibration learned so far.
    pub fn report(&self) -> CalibrationReport<C> {
        CalibrationReport {
            candidates: self.candidates.clone(),
            winner: self.winner(),
            reprobes: self.reprobes,
            expected_selectivity: self.expected_selectivity,
            observed_selectivity: if self.total_rows > 0 {
                self.total_matches as f64 / self.total_rows as f64
            } else {
                0.0
            },
        }
    }
}

/// Knobs for [`run_scan_adaptive`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Calibration protocol parameters.
    pub calibration: CalibrationConfig,
    /// Worker threads for the steady-state phase.
    pub threads: usize,
    /// Morsel size in rows (probe granularity and parallel work unit).
    pub morsel_rows: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            calibration: CalibrationConfig::default(),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }
}

/// What an adaptive scan decided and why.
#[derive(Debug, Clone)]
pub struct AdaptiveScanReport {
    /// Plan-time ranking of all candidates (cheapest first).
    pub ranked: Vec<RankedKernel<ScanImpl>>,
    /// What runtime calibration measured and chose.
    pub calibration: CalibrationReport<ScanImpl>,
}

impl AdaptiveScanReport {
    /// The plan-time verdict of the top-ranked kernel — the
    /// bandwidth-vs-compute regime that justified the ranking.
    pub fn plan_verdict(&self) -> Option<BoundVerdict> {
        self.ranked.first().map(|r| r.cost.verdict())
    }
}

/// Run the chain adaptively: rank candidates with the cost model, probe
/// the top ones on the first morsels, then run the winner on the
/// remainder (morsel-parallel across `cfg.threads`), re-probing if the
/// observed selectivity drifts. Produces exactly the single-kernel result
/// (positions ascending), merged telemetry across both phases, and a
/// report of the decision.
pub fn run_scan_adaptive<T: ScanElem>(
    preds: &[TypedPred<'_, T>],
    mode: OutputMode,
    profile: &ChainProfile,
    cfg: &AdaptiveConfig,
    level: TelemetryLevel,
) -> Result<(ScanOutput, ScanTelemetry, AdaptiveScanReport), EngineError> {
    let peak = crate::stride::peak_bandwidth_gbps();
    let candidates = candidate_scan_impls::<T>();
    let ranked = rank_scan_impls(&candidates, profile, peak);
    let ranked_kernels: Vec<ScanImpl> = ranked.iter().map(|r| r.kernel).collect();
    let mut cal = Calibrator::new(
        &ranked_kernels,
        profile.expected_selectivity(),
        cfg.calibration,
    );

    let rows = preds.first().map_or(0, |p| p.data.len());
    let morsel_rows = cfg.morsel_rows.max(1);
    if rows == 0 || preds.is_empty() {
        let imp = best_fused_impl::<T>();
        let (out, telemetry) = crate::engine::run_scan_telemetered(imp, preds, mode, level)?;
        return Ok((
            out,
            telemetry,
            AdaptiveScanReport {
                ranked,
                calibration: cal.report(),
            },
        ));
    }

    let started = Instant::now();
    let mut base = 0usize;
    let mut total = 0u64;
    let mut positions = PosList::new();
    let mut telemetry: Option<ScanTelemetry> = None;
    let mut stitch = |out: ScanOutput, t: ScanTelemetry, base: usize| {
        match out {
            ScanOutput::Count(n) => total += n,
            ScanOutput::Positions(pl) => {
                total += pl.len() as u64;
                for p in &pl {
                    positions.push(base as u32 + p);
                }
            }
        }
        match &mut telemetry {
            None => telemetry = Some(t),
            Some(acc) => acc.merge(&t),
        }
    };

    while base < rows {
        match cal.phase() {
            Phase::Calibrating(imp) => {
                // Probe: one morsel, single-threaded, individually timed.
                let end = (base + morsel_rows).min(rows);
                let sub: Vec<TypedPred<'_, T>> = preds
                    .iter()
                    .map(|p| TypedPred::new(&p.data[base..end], p.op, p.needle))
                    .collect();
                let probe_started = Instant::now();
                let (out, t) = crate::engine::run_scan_telemetered(imp, &sub, mode, level)?;
                let wall_ns = probe_started.elapsed().as_nanos() as u64;
                cal.observe(imp, (end - base) as u64, wall_ns, out.count());
                stitch(out, t, base);
                base = end;
            }
            Phase::Steady(imp) => {
                // Steady state: run up to a drift-check window of morsels
                // in parallel with the winner.
                let window = (cal.cfg.recheck_rows as usize)
                    .max(morsel_rows)
                    .next_multiple_of(morsel_rows);
                let end = (base + window).min(rows);
                let sub: Vec<TypedPred<'_, T>> = preds
                    .iter()
                    .map(|p| TypedPred::new(&p.data[base..end], p.op, p.needle))
                    .collect();
                let (out, t) = run_scan_parallel_telemetered(
                    imp,
                    &sub,
                    mode,
                    cfg.threads.max(1),
                    morsel_rows,
                    level,
                )?;
                cal.observe(imp, (end - base) as u64, 0, out.count());
                stitch(out, t, base);
                base = end;
            }
        }
    }

    let mut telemetry =
        telemetry.unwrap_or_else(|| ScanTelemetry::disabled(best_fused_impl::<T>().name()));
    if level != TelemetryLevel::Off {
        telemetry.wall = started.elapsed();
        telemetry.threads = telemetry.threads.max(1);
    }
    if let Some(winner) = cal.winner() {
        telemetry.impl_name = winner.name();
    }
    let out = match mode {
        OutputMode::Count => ScanOutput::Count(total),
        OutputMode::Positions => ScanOutput::Positions(positions),
    };
    Ok((
        out,
        telemetry,
        AdaptiveScanReport {
            ranked,
            calibration: cal.report(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use fts_storage::CmpOp;

    fn cfg_probe(k: usize, top: usize) -> CalibrationConfig {
        CalibrationConfig {
            probes_per_candidate: k,
            top_candidates: top,
            drift_threshold: 0.5,
            drift_floor: 0.02,
            recheck_rows: 100,
        }
    }

    #[test]
    fn cost_model_prefers_wide_registers_on_simple_chains() {
        if detect() < SimdLevel::Avx512 {
            return;
        }
        let profile = ChainProfile::uniform_u32(1 << 20, 2, 0.1);
        let ranked = rank_scan_impls(&candidate_scan_impls::<u32>(), &profile, 20.0);
        // Top pick is a hardware fused kernel, and the interpreted scalar
        // engine is never ranked first.
        assert!(
            matches!(
                ranked[0].kernel,
                ScanImpl::FusedAvx512(_) | ScanImpl::FusedAvx2 | ScanImpl::SisdAutoVec
            ),
            "{:?}",
            ranked[0]
        );
        for r in &ranked {
            assert!(r.cost.est_ns > 0.0);
            assert!(r.cost.est_ns >= r.cost.memory_ns.max(r.cost.compute_ns) - 1e-9);
        }
        // Ranking is sorted.
        for pair in ranked.windows(2) {
            assert!(pair[0].cost.est_ns <= pair[1].cost.est_ns);
        }
    }

    #[test]
    fn packed_cost_wins_on_bandwidth_bound_chains() {
        // 9-bit packed values stream ~4.4× fewer bytes; in a
        // bandwidth-bound regime (low peak) the packed kernel must beat a
        // plain 4-byte scan.
        let packed = ChainProfile {
            rows: 1 << 24,
            preds: vec![PredProfile {
                selectivity: 0.1,
                width_bytes: 4,
                encoding: Encoding::Packed { bits: 9 },
            }],
        };
        let plain = ChainProfile::uniform_u32(1 << 24, 1, 0.1);
        let peak = 10.0;
        let c_packed = estimate_packed_cost(&packed, peak);
        let c_plain = estimate_cost(ScanImpl::FusedAvx512(RegWidth::W512), &plain, peak);
        assert!(c_packed.est_ns < c_plain.est_ns, "{c_packed:?} {c_plain:?}");
        assert_eq!(c_plain.verdict(), BoundVerdict::BandwidthBound);
    }

    #[test]
    fn branching_model_penalizes_unpredictable_selectivity() {
        let coin_flip = ChainProfile::uniform_u32(1 << 20, 2, 0.5);
        let skewed = ChainProfile::uniform_u32(1 << 20, 2, 0.001);
        let c_flip = estimate_cost(ScanImpl::SisdBranching, &coin_flip, 1e6);
        let c_skew = estimate_cost(ScanImpl::SisdBranching, &skewed, 1e6);
        assert!(c_flip.compute_ns > c_skew.compute_ns * 2.0);
    }

    #[test]
    fn calibration_winner_sticks() {
        // Fake timings: kernel B is twice as fast as A and C.
        let mut cal = Calibrator::new(&["A", "B", "C"], 0.1, cfg_probe(2, 3));
        for _ in 0..6 {
            let Phase::Calibrating(k) = cal.phase() else {
                panic!("should still be probing");
            };
            let wall = if k == "B" { 500 } else { 1000 };
            cal.observe(k, 100, wall, 10);
        }
        assert_eq!(cal.winner(), Some("B"));
        for _ in 0..50 {
            assert_eq!(cal.phase(), Phase::Steady("B"));
            cal.observe("B", 10, 0, 1);
        }
        let report = cal.report();
        assert_eq!(report.winner, Some("B"));
        assert_eq!(report.reprobes, 0);
        assert_eq!(report.candidates.len(), 3);
        let b = report.candidates.iter().find(|c| c.kernel == "B").unwrap();
        assert_eq!(b.morsels, 2);
        assert!(b.values_per_us() > 0.0);
    }

    #[test]
    fn drift_triggers_reprobe_and_new_winner() {
        let mut cal = Calibrator::new(&["A", "B"], 0.10, cfg_probe(1, 2));
        // Probe: A fast, B slow → A wins. Observed selectivity ~0.10.
        cal.observe("A", 100, 100, 10);
        cal.observe("B", 100, 400, 10);
        assert_eq!(cal.winner(), Some("A"));

        // Steady at the expected selectivity: no re-probe.
        cal.observe("A", 100, 0, 10);
        assert_eq!(cal.winner(), Some("A"));
        assert_eq!(cal.report().reprobes, 0);

        // Selectivity jumps to 0.9: window of ≥100 rows triggers drift.
        cal.observe("A", 100, 0, 90);
        assert_eq!(cal.winner(), None, "drift must force re-probe");
        let report = cal.report();
        assert_eq!(report.reprobes, 1);
        assert!((report.expected_selectivity - 0.9).abs() < 0.3);

        // Second probe round: now B is fast → B becomes the winner.
        for _ in 0..2 {
            let Phase::Calibrating(k) = cal.phase() else {
                panic!("should be re-probing");
            };
            let wall = if k == "B" { 100 } else { 400 };
            cal.observe(k, 100, wall, 90);
        }
        assert_eq!(cal.winner(), Some("B"));
    }

    #[test]
    fn small_drift_does_not_reprobe() {
        let mut cal = Calibrator::new(&["A", "B"], 0.10, cfg_probe(1, 2));
        cal.observe("A", 100, 100, 10);
        cal.observe("B", 100, 200, 10);
        assert_eq!(cal.winner(), Some("A"));
        // 0.10 → 0.12 is inside the 50% relative threshold.
        for _ in 0..10 {
            cal.observe("A", 100, 0, 12);
        }
        assert_eq!(cal.winner(), Some("A"));
        assert_eq!(cal.report().reprobes, 0);
    }

    #[test]
    fn single_candidate_skips_probing() {
        let cal = Calibrator::new(&["only"], 0.5, cfg_probe(2, 3));
        assert_eq!(cal.winner(), Some("only"));
        assert_eq!(cal.phase(), Phase::Steady("only"));
    }

    #[test]
    fn top_candidates_truncates() {
        let cal = Calibrator::new(&["A", "B", "C", "D"], 0.5, cfg_probe(1, 2));
        assert_eq!(cal.report().candidates.len(), 2);
    }

    #[test]
    fn adaptive_scan_matches_reference() {
        let rows = 200_000u32;
        let a: Vec<u32> = (0..rows).map(|i| i % 10).collect();
        let b: Vec<u32> = (0..rows).map(|i| i.wrapping_mul(7) % 4).collect();
        let preds = [
            TypedPred::new(&a[..], CmpOp::Eq, 5u32),
            TypedPred::new(&b[..], CmpOp::Ne, 2u32),
        ];
        let expected = reference::scan_positions(&preds);
        let profile = ChainProfile::uniform_u32(rows as u64, 2, 0.1);
        let cfg = AdaptiveConfig {
            calibration: CalibrationConfig {
                recheck_rows: 4 * (1 << 14),
                ..CalibrationConfig::default()
            },
            threads: 2,
            morsel_rows: 1 << 14,
        };
        let (out, t, report) = run_scan_adaptive(
            &preds,
            OutputMode::Positions,
            &profile,
            &cfg,
            TelemetryLevel::Full,
        )
        .unwrap();
        assert_eq!(out.positions().unwrap(), &expected);
        assert!(report.calibration.winner.is_some());
        assert!(!report.ranked.is_empty());
        assert!(report.plan_verdict().is_some());
        // Telemetry merged across the probe/steady boundary covers every
        // row and morsel exactly once.
        assert_eq!(t.rows, rows as u64);
        assert_eq!(t.morsels, (rows as u64).div_ceil(1 << 14));
        assert_eq!(*t.pred_survivors.last().unwrap(), expected.len() as u64);
        let count = run_scan_adaptive(
            &preds,
            OutputMode::Count,
            &profile,
            &cfg,
            TelemetryLevel::Off,
        )
        .unwrap()
        .0;
        assert_eq!(count.count(), expected.len() as u64);
    }

    #[test]
    fn adaptive_scan_empty_chain() {
        let preds: Vec<TypedPred<'_, u32>> = vec![];
        let profile = ChainProfile::uniform_u32(0, 1, 0.5);
        let (out, _, _) = run_scan_adaptive(
            &preds,
            OutputMode::Count,
            &profile,
            &AdaptiveConfig::default(),
            TelemetryLevel::Off,
        )
        .unwrap();
        assert_eq!(out.count(), 0);
    }

    #[test]
    fn profile_helpers() {
        let p = ChainProfile::uniform_u32(1000, 2, 0.5);
        assert_eq!(p.prefix_survivors(), vec![500.0, 250.0]);
        assert!((p.expected_selectivity() - 0.25).abs() < 1e-12);
        assert_eq!(Encoding::Packed { bits: 8 }.bytes_per_value(4), 1.0);
        assert_eq!(Encoding::Dict.bytes_per_value(8), 4.0);
    }
}
