//! AVX2 backport of the Fused Table Scan — the paper's *AVX2 Fused (128)*
//! baseline (§III last paragraph, §IV Fig. 5).
//!
//! AVX2 has no mask registers, no compress and no two-table permute, so the
//! three AVX-512 specialties are emulated exactly the way the paper's
//! `REG == 128 && !AVX512` configuration does:
//!
//! * **compare → bitmask**: vector compare (`vpcmpeqd`/`vpcmpgtd`, with a
//!   sign-bias trick for unsigned operands) followed by `vmovmskps`;
//! * **compress**: a 16-entry lookup table of `vpshufb` controls indexed by
//!   the 4-bit match mask (the paper notes this emulation "became 32
//!   lines");
//! * **append** (`vpermt2d` equivalent): shift the fresh batch up by the
//!   list length with another `vpshufb` control and OR it onto the
//!   zero-padded list;
//! * **masked gather**: AVX2's `vpgatherdd` with a sign-bit vector mask
//!   (inactive lanes are not dereferenced, like AVX-512).
//!
//! The tail (< 4 rows) is evaluated with the scalar chain *after* the
//! drain, preserving ascending output order.

#![cfg(target_arch = "x86_64")]
#![allow(unsafe_op_in_unsafe_fn)] // one kernel = one contiguous unsafe context

use std::arch::x86_64::*;

use fts_simd::has_avx2;
use fts_storage::{CmpOp, PosList};

use crate::fused::MAX_PREDICATES;
use crate::pred::{OutputMode, ScanOutput, TypedPred};

/// Lanes per 128-bit register of 4-byte values.
pub const LANES: usize = 4;

/// `vpshufb` controls emulating `vpcompressd`: entry `m` packs the lanes
/// whose bit is set in `m` to the front and zeroes the rest (0x80 control).
static COMPRESS_LUT: [[u8; 16]; 16] = {
    let mut lut = [[0x80u8; 16]; 16];
    let mut m = 0usize;
    while m < 16 {
        let mut dst = 0usize;
        let mut lane = 0usize;
        while lane < 4 {
            if m & (1 << lane) != 0 {
                let mut b = 0usize;
                while b < 4 {
                    lut[m][dst * 4 + b] = (lane * 4 + b) as u8;
                    b += 1;
                }
                dst += 1;
            }
            lane += 1;
        }
        m += 1;
    }
    lut
};

/// `vpshufb` controls shifting a batch up by `count` lanes (zero below),
/// used to append behind an existing zero-padded list via OR.
static SHIFT_LUT: [[u8; 16]; 5] = {
    let mut lut = [[0x80u8; 16]; 5];
    let mut c = 0usize;
    while c <= 4 {
        let mut i = c;
        while i < 4 {
            let mut b = 0usize;
            while b < 4 {
                lut[c][i * 4 + b] = ((i - c) * 4 + b) as u8;
                b += 1;
            }
            i += 1;
        }
        c += 1;
    }
    lut
};

/// Sign-bit lane masks for the AVX2 gather: entry `c` activates lanes `< c`.
static GATHER_MASK: [[i32; 4]; 5] = [
    [0, 0, 0, 0],
    [-1, 0, 0, 0],
    [-1, -1, 0, 0],
    [-1, -1, -1, 0],
    [-1, -1, -1, -1],
];

// --- compare-to-bitmask fns (one per element kind) ----------------------

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn movemask(v: __m128i) -> u32 {
    _mm_movemask_ps(_mm_castsi128_ps(v)) as u32
}

/// Biased integer compare: `bias = i32::MIN` turns signed `vpcmpgtd` into an
/// unsigned comparison; `bias = 0` keeps it signed.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn cmp_int_mask(op: CmpOp, a: __m128i, b: __m128i, bias: __m128i) -> u32 {
    match op {
        CmpOp::Eq => movemask(_mm_cmpeq_epi32(a, b)),
        CmpOp::Ne => movemask(_mm_cmpeq_epi32(a, b)) ^ 0xF,
        _ => {
            let ab = _mm_xor_si128(a, bias);
            let bb = _mm_xor_si128(b, bias);
            match op {
                CmpOp::Lt => movemask(_mm_cmpgt_epi32(bb, ab)),
                CmpOp::Ge => movemask(_mm_cmpgt_epi32(bb, ab)) ^ 0xF,
                CmpOp::Gt => movemask(_mm_cmpgt_epi32(ab, bb)),
                CmpOp::Le => movemask(_mm_cmpgt_epi32(ab, bb)) ^ 0xF,
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            }
        }
    }
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn cmp_mask_u32(op: CmpOp, a: __m128i, b: __m128i) -> u32 {
    cmp_int_mask(op, a, b, _mm_set1_epi32(i32::MIN))
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn cmp_mask_i32(op: CmpOp, a: __m128i, b: __m128i) -> u32 {
    cmp_int_mask(op, a, b, _mm_setzero_si128())
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn cmp_mask_f32(op: CmpOp, a: __m128i, b: __m128i) -> u32 {
    let (fa, fb) = (_mm_castsi128_ps(a), _mm_castsi128_ps(b));
    // Ordered, quiet predicates — NaN compares false everywhere.
    let v = match op {
        CmpOp::Eq => _mm_cmp_ps::<_CMP_EQ_OQ>(fa, fb),
        CmpOp::Ne => _mm_cmp_ps::<_CMP_NEQ_OQ>(fa, fb),
        CmpOp::Lt => _mm_cmp_ps::<_CMP_LT_OS>(fa, fb),
        CmpOp::Le => _mm_cmp_ps::<_CMP_LE_OS>(fa, fb),
        CmpOp::Gt => _mm_cmp_ps::<_CMP_GT_OS>(fa, fb),
        CmpOp::Ge => _mm_cmp_ps::<_CMP_GE_OS>(fa, fb),
    };
    _mm_movemask_ps(v) as u32
}

macro_rules! avx2_kernel {
    ($modname:ident, $elem:ty, $cmp:ident) => {
        /// AVX2 fused kernel for one element kind (128-bit registers).
        pub mod $modname {
            use super::*;

            struct State<'a> {
                preds: &'a [TypedPred<'a, $elem>],
                nsplat: [__m128i; MAX_PREDICATES],
                plists: [__m128i; MAX_PREDICATES],
                counts: [usize; MAX_PREDICATES],
                out: Vec<u32>,
                total: u64,
            }

            /// Emulated `vpcompressd` with zeroing: pack lanes of `v` whose
            /// bit in `k` is set, zero the rest.
            #[inline]
            #[target_feature(enable = "avx2")]
            unsafe fn compress(k: u32, v: __m128i) -> __m128i {
                let ctl = _mm_loadu_si128(COMPRESS_LUT[k as usize].as_ptr() as *const __m128i);
                _mm_shuffle_epi8(v, ctl)
            }

            #[target_feature(enable = "avx2,popcnt")]
            unsafe fn push<const EMIT: bool>(
                st: &mut State<'_>,
                s: usize,
                fresh: __m128i,
                m: usize,
            ) {
                if st.counts[s] + m > LANES {
                    flush::<EMIT>(st, s);
                    st.plists[s] = fresh;
                    st.counts[s] = m;
                } else {
                    // Append: shift the fresh batch up by the list length
                    // and OR onto the zero-padded list.
                    let ctl = _mm_loadu_si128(SHIFT_LUT[st.counts[s]].as_ptr() as *const __m128i);
                    let shifted = _mm_shuffle_epi8(fresh, ctl);
                    st.plists[s] = _mm_or_si128(st.plists[s], shifted);
                    st.counts[s] += m;
                }
                if st.counts[s] == LANES {
                    flush::<EMIT>(st, s);
                }
            }

            #[target_feature(enable = "avx2,popcnt")]
            unsafe fn flush<const EMIT: bool>(st: &mut State<'_>, s: usize) {
                let c = st.counts[s];
                if c == 0 {
                    return;
                }
                let plist = st.plists[s];
                st.plists[s] = _mm_setzero_si128();
                st.counts[s] = 0;

                let pred = &st.preds[s + 1];
                let maskv = _mm_loadu_si128(GATHER_MASK[c].as_ptr() as *const __m128i);
                let vals = _mm_mask_i32gather_epi32::<4>(
                    _mm_setzero_si128(),
                    pred.data.as_ptr() as *const i32,
                    plist,
                    maskv,
                );
                let k2 = $cmp(pred.op, vals, st.nsplat[s + 1]) & fts_simd::model::lane_mask(c);
                let m2 = k2.count_ones() as usize;
                if m2 == 0 {
                    return;
                }
                let fresh2 = compress(k2, plist);
                if s + 2 == st.preds.len() {
                    emit::<EMIT>(st, fresh2, m2);
                } else {
                    push::<EMIT>(st, s + 1, fresh2, m2);
                }
            }

            #[target_feature(enable = "avx2,popcnt")]
            unsafe fn emit<const EMIT: bool>(st: &mut State<'_>, fresh: __m128i, m: usize) {
                st.total += m as u64;
                if EMIT {
                    let len = st.out.len();
                    st.out.reserve(LANES);
                    _mm_storeu_si128(st.out.as_mut_ptr().add(len) as *mut __m128i, fresh);
                    st.out.set_len(len + m);
                }
            }

            #[target_feature(enable = "avx2,popcnt")]
            unsafe fn kernel<const EMIT: bool>(preds: &[TypedPred<'_, $elem>]) -> (u64, Vec<u32>) {
                let p = preds.len();
                let rows = preds[0].data.len();
                let mut st = State {
                    preds,
                    nsplat: std::array::from_fn(|i| {
                        _mm_set1_epi32(preds.get(i).map_or(0, |q| elem_bits(q.needle)))
                    }),
                    plists: [_mm_setzero_si128(); MAX_PREDICATES],
                    counts: [0; MAX_PREDICATES],
                    out: Vec::new(),
                    total: 0,
                };
                let col0 = preds[0].data.as_ptr();
                let op0 = preds[0].op;
                let needle0 = st.nsplat[0];
                let iota = _mm_setr_epi32(0, 1, 2, 3);

                let full_blocks = rows / LANES;
                for blk in 0..full_blocks {
                    let v = _mm_loadu_si128(col0.add(blk * LANES) as *const __m128i);
                    let k = $cmp(op0, v, needle0);
                    if k == 0 {
                        continue;
                    }
                    let m = k.count_ones() as usize;
                    let idx = _mm_add_epi32(iota, _mm_set1_epi32((blk * LANES) as i32));
                    let fresh = compress(k, idx);
                    if p == 1 {
                        emit::<EMIT>(&mut st, fresh, m);
                    } else {
                        push::<EMIT>(&mut st, 0, fresh, m);
                    }
                }

                // Drain, then evaluate the (< 4 row) tail scalar — after the
                // drain so positions stay ascending.
                for s in 0..p.saturating_sub(1) {
                    flush::<EMIT>(&mut st, s);
                }
                for row in full_blocks * LANES..rows {
                    if preds.iter().all(|q| q.matches(row)) {
                        st.total += 1;
                        if EMIT {
                            st.out.push(row as u32);
                        }
                    }
                }
                (st.total, st.out)
            }

            /// Safe entry point; panics without AVX2 or on an invalid chain.
            pub fn fused_scan(preds: &[TypedPred<'_, $elem>], mode: OutputMode) -> ScanOutput {
                assert!(has_avx2(), "AVX2 not available on this host");
                assert!(
                    preds.len() <= MAX_PREDICATES,
                    "chain too long for one fused kernel"
                );
                let empty = match mode {
                    OutputMode::Count => ScanOutput::Count(0),
                    OutputMode::Positions => ScanOutput::Positions(PosList::new()),
                };
                let Some(first) = preds.first() else {
                    return empty;
                };
                let rows = first.data.len();
                for q in preds {
                    assert_eq!(q.data.len(), rows, "chain columns must have equal length");
                }
                assert!(
                    rows <= i32::MAX as usize,
                    "chunk exceeds 32-bit gather index range"
                );
                // SAFETY: AVX2 presence asserted; columns validated.
                match mode {
                    OutputMode::Count => {
                        let (total, _) = unsafe { kernel::<false>(preds) };
                        ScanOutput::Count(total)
                    }
                    OutputMode::Positions => {
                        let (_, out) = unsafe { kernel::<true>(preds) };
                        ScanOutput::Positions(PosList::from_vec(out))
                    }
                }
            }
        }
    };
}

#[inline(always)]
fn elem_bits<T: super::avx512::Elem32>(v: T) -> i32 {
    super::avx512::Elem32::bits(v)
}

avx2_kernel!(u32_w128, u32, cmp_mask_u32);
avx2_kernel!(i32_w128, i32, cmp_mask_i32);
avx2_kernel!(f32_w128, f32, cmp_mask_f32);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn skip() -> bool {
        if !has_avx2() {
            eprintln!("skipping: no AVX2 on this host");
            return true;
        }
        false
    }

    #[test]
    fn luts_are_consistent() {
        // COMPRESS_LUT[m] packs exactly the lanes of m in order.
        for (m, packed) in COMPRESS_LUT.iter().enumerate() {
            let mut expect = [0x80u8; 16];
            let mut d = 0;
            for lane in 0..4 {
                if m & (1 << lane) != 0 {
                    for b in 0..4 {
                        expect[d * 4 + b] = (lane * 4 + b) as u8;
                    }
                    d += 1;
                }
            }
            assert_eq!(*packed, expect, "mask {m:04b}");
        }
        // SHIFT_LUT[c] moves lane j to lane j + c.
        assert_eq!(SHIFT_LUT[0][0], 0);
        assert_eq!(SHIFT_LUT[1][4], 0);
        assert_eq!(SHIFT_LUT[2][8..12], [0, 1, 2, 3]);
        assert_eq!(SHIFT_LUT[4], [0x80u8; 16]);
    }

    #[test]
    fn figure3_worked_example() {
        if skip() {
            return;
        }
        let a = [2u32, 5, 4, 5, 6, 1, 5, 7, 6, 8, 5, 3, 5, 9, 9, 5];
        let b = [5u32, 2, 3, 1, 1, 3, 6, 0, 8, 7, 3, 3, 2, 9, 3, 2];
        let preds = [TypedPred::eq(&a[..], 5), TypedPred::eq(&b[..], 2)];
        let out = u32_w128::fused_scan(&preds, OutputMode::Positions);
        assert_eq!(out.positions().unwrap().as_slice(), &[1, 12, 15]);
        assert_eq!(u32_w128::fused_scan(&preds, OutputMode::Count).count(), 3);
    }

    #[test]
    fn unsigned_compare_bias_all_ops() {
        if skip() {
            return;
        }
        // Values straddling the sign bit expose a missing unsigned bias.
        let a: Vec<u32> = vec![
            0,
            1,
            0x7FFF_FFFF,
            0x8000_0000,
            0xFFFF_FFFF,
            5,
            0x8000_0001,
            2,
        ];
        let b: Vec<u32> = vec![1; 8];
        for op in CmpOp::ALL {
            let preds = [
                TypedPred::new(&a[..], op, 0x8000_0000u32),
                TypedPred::new(&b[..], CmpOp::Eq, 1u32),
            ];
            let expected = reference::scan_positions(&preds);
            let got = u32_w128::fused_scan(&preds, OutputMode::Positions);
            assert_eq!(got.positions().unwrap(), &expected, "{op}");
        }
    }

    #[test]
    fn signed_and_float_kernels() {
        if skip() {
            return;
        }
        let a: Vec<i32> = (0..333).map(|i| (i % 9) - 4).collect();
        let b: Vec<i32> = (0..333).map(|i| (i % 5) - 2).collect();
        for op in CmpOp::ALL {
            let preds = [
                TypedPred::new(&a[..], op, 0i32),
                TypedPred::new(&b[..], CmpOp::Ge, -1i32),
            ];
            let expected = reference::scan_positions(&preds);
            let got = i32_w128::fused_scan(&preds, OutputMode::Positions);
            assert_eq!(got.positions().unwrap(), &expected, "i32 {op}");
        }

        let mut f: Vec<f32> = (0..333).map(|i| (i % 7) as f32).collect();
        f[31] = f32::NAN;
        let g: Vec<f32> = (0..333).map(|i| (i % 3) as f32).collect();
        for op in CmpOp::ALL {
            let preds = [
                TypedPred::new(&f[..], op, 3.0f32),
                TypedPred::new(&g[..], CmpOp::Lt, 2.0f32),
            ];
            let expected = reference::scan_positions(&preds);
            let got = f32_w128::fused_scan(&preds, OutputMode::Positions);
            assert_eq!(got.positions().unwrap(), &expected, "f32 {op}");
        }
    }

    #[test]
    fn tails_chains_and_selectivity_extremes() {
        if skip() {
            return;
        }
        for rows in [0usize, 1, 3, 4, 5, 7, 9, 100, 101, 102, 103] {
            let cols: Vec<Vec<u32>> = (0..4u32)
                .map(|c| {
                    (0..rows as u32)
                        .map(|i| i.wrapping_mul(c + 3) % 3)
                        .collect()
                })
                .collect();
            for p in 1..=4 {
                let preds: Vec<TypedPred<'_, u32>> =
                    cols[..p].iter().map(|c| TypedPred::eq(&c[..], 0)).collect();
                let expected = reference::scan_positions(&preds);
                let got = u32_w128::fused_scan(&preds, OutputMode::Positions);
                assert_eq!(got.positions().unwrap(), &expected, "rows={rows} P={p}");
                let got = u32_w128::fused_scan(&preds, OutputMode::Count);
                assert_eq!(got.count(), expected.len() as u64, "rows={rows} P={p}");
            }
        }
        let all = vec![5u32; 1000];
        let preds = [TypedPred::eq(&all[..], 5u32), TypedPred::eq(&all[..], 5u32)];
        assert_eq!(
            u32_w128::fused_scan(&preds, OutputMode::Count).count(),
            1000
        );
    }
}
