//! Portable fused-scan engine built on the semantic models of
//! [`fts_simd::model`].
//!
//! This is the *executable specification* of the Fused Table Scan: it runs
//! the exact per-block algorithm of paper Fig. 3 — masked compare →
//! maskz-compress → permutex2var merge → masked gather — for any
//! [`NativeType`] and any lane count, on any architecture. The hardware
//! kernels are differential-tested against it; it is also the fallback
//! engine on machines without AVX2/AVX-512 and for data types that have no
//! dedicated hardware kernel yet.

use fts_simd::model;
use fts_storage::{NativeType, PosList};

use crate::fused::{merge_index, MAX_PREDICATES};
use crate::pred::{OutputMode, ScanOutput, TypedPred};

/// Observer for the engine's per-block events, used by
/// [`crate::telemetry`] to count flushes/gathers exactly. The default
/// methods are empty, so the [`NoSink`] instantiation compiles to the
/// uninstrumented engine — telemetry is zero-cost when disabled.
pub trait FusedSink {
    /// The driver compared one block; `matches` lanes passed predicate 0.
    #[inline(always)]
    fn driver_block(&mut self, matches: usize) {
        let _ = matches;
    }

    /// Stage `stage` (1-based) flushed: `gathered` live lanes were
    /// gathered and compared, `survivors` of them passed.
    #[inline(always)]
    fn stage_flush(&mut self, stage: usize, gathered: usize, survivors: usize) {
        let _ = (stage, gathered, survivors);
    }
}

/// The do-nothing sink behind [`fused_scan_model`].
pub struct NoSink;

impl FusedSink for NoSink {}

impl<S: FusedSink> FusedSink for &mut S {
    #[inline(always)]
    fn driver_block(&mut self, matches: usize) {
        (**self).driver_block(matches);
    }

    #[inline(always)]
    fn stage_flush(&mut self, stage: usize, gathered: usize, survivors: usize) {
        (**self).stage_flush(stage, gathered, survivors);
    }
}

/// One follow-up predicate's state: the register-resident position list.
#[derive(Clone, Copy)]
struct Stage<const N: usize> {
    /// Left-aligned, zero-padded positions awaiting this stage's predicate.
    plist: [u32; N],
    /// Number of live entries in `plist`.
    count: usize,
}

impl<const N: usize> Stage<N> {
    fn empty() -> Self {
        Stage {
            plist: [0; N],
            count: 0,
        }
    }
}

/// Engine state for one scan: the stages for predicates `1..P` plus the
/// output accumulator.
struct Engine<'a, T, S, const N: usize> {
    preds: &'a [TypedPred<'a, T>],
    stages: Vec<Stage<N>>,
    positions: PosList,
    count: u64,
    emit_positions: bool,
    sink: S,
}

impl<'a, T: NativeType, S: FusedSink, const N: usize> Engine<'a, T, S, N> {
    /// Append a compressed batch (`fresh[..m]`, zero-padded) to stage `s`
    /// (1-based predicate index). Flushes per invariant 2 of
    /// [`crate::fused`].
    fn push(&mut self, s: usize, fresh: [u32; N], m: usize) {
        debug_assert!(m > 0 && m <= N);
        let stage = &mut self.stages[s - 1];
        if stage.count + m > N {
            // Batch does not fit: process the incomplete list first, then
            // start a new list with the batch (paper §III).
            self.flush(s);
            let stage = &mut self.stages[s - 1];
            stage.plist = fresh;
            stage.count = m;
        } else {
            stage.plist = model::permutex2var(stage.plist, merge_index::<N>(stage.count), fresh);
            stage.count += m;
        }
        if self.stages[s - 1].count == N {
            self.flush(s);
        }
    }

    /// Evaluate stage `s`'s predicate on its pending positions and forward
    /// the survivors.
    fn flush(&mut self, s: usize) {
        let stage = &mut self.stages[s - 1];
        let c = stage.count;
        if c == 0 {
            return;
        }
        let plist = stage.plist;
        stage.plist = [0; N];
        stage.count = 0;

        let kmask = model::lane_mask(c);
        let pred = &self.preds[s];
        // Masked gather: inactive lanes are never dereferenced (their
        // indexes are zero-padding anyway).
        let vals = model::mask_gather([T::default(); N], kmask, plist, pred.data);
        let k2 = model::mask_cmp_mask(kmask, pred.op, vals, model::splat(pred.needle));
        let m2 = k2.count_ones() as usize;
        self.sink.stage_flush(s, c, m2);
        if m2 == 0 {
            return;
        }
        let fresh2 = model::compress([0u32; N], k2, plist);
        if s == self.preds.len() - 1 {
            self.emit(fresh2, m2);
        } else {
            self.push(s + 1, fresh2, m2);
        }
    }

    fn emit(&mut self, positions: [u32; N], m: usize) {
        self.count += m as u64;
        if self.emit_positions {
            for &p in &positions[..m] {
                self.positions.push(p);
            }
        }
    }
}

/// Run the fused scan over a homogeneous predicate chain with `N` lanes.
///
/// Chains longer than [`MAX_PREDICATES`] and ragged columns panic (the
/// engine layer validates before calling).
pub fn fused_scan_model<T: NativeType, const N: usize>(
    preds: &[TypedPred<'_, T>],
    mode: OutputMode,
) -> ScanOutput {
    fused_scan_model_sink::<T, N, NoSink>(preds, mode, &mut NoSink)
}

/// [`fused_scan_model`] with an event sink observing every driver block
/// and stage flush (how [`crate::telemetry`] counts exactly).
pub fn fused_scan_model_sink<T: NativeType, const N: usize, S: FusedSink>(
    preds: &[TypedPred<'_, T>],
    mode: OutputMode,
    sink: &mut S,
) -> ScanOutput {
    assert!(N >= 2 && N <= 32, "lane count must be in 2..=32");
    assert!(
        preds.len() <= MAX_PREDICATES,
        "chain too long for one fused kernel"
    );
    let empty = match mode {
        OutputMode::Count => ScanOutput::Count(0),
        OutputMode::Positions => ScanOutput::Positions(PosList::new()),
    };
    let Some(first) = preds.first() else {
        return empty;
    };
    let rows = first.data.len();
    for p in preds {
        assert_eq!(p.data.len(), rows, "chain columns must have equal length");
    }
    assert!(
        rows <= i32::MAX as usize,
        "chunk exceeds 32-bit gather index range"
    );

    let mut eng: Engine<'_, T, &mut S, N> = Engine {
        preds,
        stages: vec![Stage::empty(); preds.len().saturating_sub(1)],
        positions: PosList::new(),
        count: 0,
        emit_positions: mode == OutputMode::Positions,
        sink,
    };

    let needle = model::splat::<T, N>(first.needle);
    let mut base = 0usize;
    while base < rows {
        let tail = (rows - base).min(N);
        // Block load; the tail block is zero-filled beyond `tail` and its
        // compare is masked (mirrors `_mm512_maskz_loadu_epi32`).
        let block: [T; N] = std::array::from_fn(|i| {
            if i < tail {
                first.data[base + i]
            } else {
                T::default()
            }
        });
        let k = model::mask_cmp_mask(model::lane_mask(tail), first.op, block, needle);
        let m = k.count_ones() as usize;
        eng.sink.driver_block(m);
        if m != 0 {
            let idx: [u32; N] = std::array::from_fn(|i| (base + i) as u32);
            let fresh = model::compress([0u32; N], k, idx);
            if preds.len() == 1 {
                eng.emit(fresh, m);
            } else {
                eng.push(1, fresh, m);
            }
        }
        base += N;
    }

    // Drain partial lists, ascending so survivors cascade forward.
    for s in 1..preds.len() {
        eng.flush(s);
    }

    match mode {
        OutputMode::Count => ScanOutput::Count(eng.count),
        OutputMode::Positions => ScanOutput::Positions(eng.positions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use fts_storage::CmpOp;

    fn check_all_widths<T: NativeType>(preds: &[TypedPred<'_, T>]) {
        let expected = reference::scan_positions(preds);
        macro_rules! check {
            ($($n:literal),*) => {$(
                let got = fused_scan_model::<T, $n>(preds, OutputMode::Positions);
                assert_eq!(
                    got.positions().unwrap(),
                    &expected,
                    "positions mismatch at N={}", $n
                );
                let got = fused_scan_model::<T, $n>(preds, OutputMode::Count);
                assert_eq!(got.count(), expected.len() as u64, "count mismatch at N={}", $n);
            )*};
        }
        check!(2, 4, 8, 16, 32);
    }

    #[test]
    fn figure3_worked_example() {
        // The exact 16-value columns of paper Fig. 3.
        let a = [2u32, 5, 4, 5, 6, 1, 5, 7, 6, 8, 5, 3, 5, 9, 9, 5];
        let b = [5u32, 2, 3, 1, 1, 3, 6, 0, 8, 7, 3, 3, 2, 9, 3, 2];
        let preds = [TypedPred::eq(&a[..], 5), TypedPred::eq(&b[..], 2)];
        let out = fused_scan_model::<u32, 4>(&preds, OutputMode::Positions);
        assert_eq!(out.positions().unwrap().as_slice(), &[1, 12, 15]);
        check_all_widths(&preds);
    }

    #[test]
    fn two_predicates_all_ops() {
        let a: Vec<u32> = (0..500).map(|i| i % 13).collect();
        let b: Vec<u32> = (0..500).map(|i| (i * 11) % 7).collect();
        for op0 in CmpOp::ALL {
            for op1 in [CmpOp::Eq, CmpOp::Ge] {
                let preds = [
                    TypedPred::new(&a[..], op0, 6u32),
                    TypedPred::new(&b[..], op1, 3u32),
                ];
                check_all_widths(&preds);
            }
        }
    }

    #[test]
    fn chains_up_to_five_predicates() {
        let cols: Vec<Vec<u32>> = (0..5u32)
            .map(|c| (0..700u32).map(|i| i.wrapping_mul(c + 7) % 3).collect())
            .collect();
        for p in 1..=5 {
            let preds: Vec<TypedPred<'_, u32>> =
                cols[..p].iter().map(|c| TypedPred::eq(&c[..], 1)).collect();
            check_all_widths(&preds);
        }
    }

    #[test]
    fn non_multiple_block_sizes_and_tails() {
        for rows in [0usize, 1, 3, 4, 5, 15, 16, 17, 31, 33, 100] {
            let a: Vec<u32> = (0..rows as u32).map(|i| i % 3).collect();
            let b: Vec<u32> = (0..rows as u32).map(|i| i % 2).collect();
            let preds = [TypedPred::eq(&a[..], 0), TypedPred::eq(&b[..], 1)];
            check_all_widths(&preds);
        }
    }

    #[test]
    fn extreme_selectivities() {
        let rows = 1000u32;
        // Everything matches predicate 1 — stresses the flush-on-full path.
        let all: Vec<u32> = vec![5; rows as usize];
        let none: Vec<u32> = vec![4; rows as usize];
        let half: Vec<u32> = (0..rows).map(|i| 4 + i % 2).collect();
        for (a, b) in [
            (&all, &half),
            (&half, &all),
            (&all, &none),
            (&none, &all),
            (&all, &all),
        ] {
            let preds = [TypedPred::eq(&a[..], 5u32), TypedPred::eq(&b[..], 5u32)];
            check_all_widths(&preds);
        }
    }

    #[test]
    fn other_native_types() {
        let a: Vec<i64> = (0..300).map(|i| (i % 9) - 4).collect();
        let b: Vec<i64> = (0..300).map(|i| (i % 5) - 2).collect();
        let preds = [
            TypedPred::new(&a[..], CmpOp::Lt, 0i64),
            TypedPred::new(&b[..], CmpOp::Ge, 0i64),
        ];
        check_all_widths(&preds);

        let a: Vec<f32> = (0..300).map(|i| (i % 7) as f32).collect();
        let preds = [TypedPred::new(&a[..], CmpOp::Le, 3.0f32)];
        check_all_widths(&preds);

        let a: Vec<u8> = (0..300).map(|i| (i % 11) as u8).collect();
        let b: Vec<u8> = (0..300).map(|i| (i % 4) as u8).collect();
        let preds = [
            TypedPred::new(&a[..], CmpOp::Gt, 5u8),
            TypedPred::new(&b[..], CmpOp::Ne, 2u8),
        ];
        check_all_widths(&preds);
    }

    #[test]
    fn nan_in_data_and_needle() {
        let mut a: Vec<f64> = (0..64).map(|i| (i % 4) as f64).collect();
        a[7] = f64::NAN;
        a[13] = f64::NAN;
        let b: Vec<f64> = (0..64).map(|i| (i % 2) as f64).collect();
        for op in CmpOp::ALL {
            let preds = [
                TypedPred::new(&a[..], op, 2.0f64),
                TypedPred::new(&b[..], CmpOp::Eq, 1.0f64),
            ];
            check_all_widths(&preds);
        }
    }

    #[test]
    fn empty_chain_returns_empty() {
        let out = fused_scan_model::<u32, 4>(&[], OutputMode::Count);
        assert_eq!(out.count(), 0);
        let out = fused_scan_model::<u32, 4>(&[], OutputMode::Positions);
        assert!(out.positions().unwrap().is_empty());
    }
}
