//! Plane-wise predicate evaluation over **byte-sliced** columns — the
//! ByteStore scan (PAPERS.md).
//!
//! A predicate over a byte-sliced column is answered most-significant
//! plane first, 64 rows at a time. Three running masks per group —
//! `lt`, `gt` (decided) and `eq` (still undecided) — are refined one
//! plane at a time:
//!
//! ```text
//! lt |= eq & (plane_byte < needle_byte)
//! gt |= eq & (plane_byte > needle_byte)
//! eq &= (plane_byte == needle_byte)
//! ```
//!
//! Once `eq` reaches zero every row of the group is decided and the
//! remaining (less significant) planes are never read — on selective
//! predicates most groups are decided after one byte per row instead of
//! four. The per-plane byte compare uses AVX-512 BW's 64-lane `u8`
//! compare masks when available, a branch-free scalar loop otherwise,
//! dispatched through `fts_simd::detect()` (so `FTS_FORCE_SIMD` gates
//! this kernel too). `Count` mode popcounts the final masks and never
//! materializes a position list.

use fts_simd::{mask_popcount, SimdLevel};
use fts_storage::{ByteSlicedColumn, CmpOp, PosList};

use crate::pred::{OutputMode, ScanOutput};

/// Per-scan statistics: how many plane-groups the early exit skipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByteSliceStats {
    /// 64-row × plane units actually compared.
    pub plane_groups_read: u64,
    /// 64-row × plane units skipped because the group was fully decided.
    pub plane_groups_skipped: u64,
}

/// Byte compare of up to 64 lanes: returns (lt, gt, eq) bit masks.
fn cmp_bytes(plane: &[u8], needle: u8, rows: usize) -> (u64, u64, u64) {
    #[cfg(target_arch = "x86_64")]
    if fts_simd::detect() == SimdLevel::Avx512 {
        // SAFETY: AVX-512 F+VL+BW+DQ presence established by detect().
        return unsafe { cmp_bytes_avx512(plane, needle, rows) };
    }
    cmp_bytes_scalar(plane, needle, rows)
}

fn cmp_bytes_scalar(plane: &[u8], needle: u8, rows: usize) -> (u64, u64, u64) {
    let (mut lt, mut gt, mut eq) = (0u64, 0u64, 0u64);
    for (i, &b) in plane[..rows].iter().enumerate() {
        lt |= ((b < needle) as u64) << i;
        gt |= ((b > needle) as u64) << i;
        eq |= ((b == needle) as u64) << i;
    }
    (lt, gt, eq)
}

/// # Safety
/// Requires AVX-512 F+VL+BW+DQ (checked by the caller via `detect()`);
/// `plane` must hold at least `rows` bytes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx512bw,avx512dq")]
#[allow(unsafe_op_in_unsafe_fn)] // one kernel = one contiguous unsafe context
unsafe fn cmp_bytes_avx512(plane: &[u8], needle: u8, rows: usize) -> (u64, u64, u64) {
    use std::arch::x86_64::*;
    let load: __mmask64 = if rows >= 64 {
        u64::MAX
    } else {
        (1u64 << rows) - 1
    };
    let v = _mm512_maskz_loadu_epi8(load, plane.as_ptr() as *const i8);
    let n = _mm512_set1_epi8(needle as i8);
    let lt = _mm512_mask_cmplt_epu8_mask(load, v, n);
    let gt = _mm512_mask_cmpgt_epu8_mask(load, v, n);
    let eq = _mm512_mask_cmpeq_epu8_mask(load, v, n);
    (lt, gt, eq)
}

/// Evaluate `col OP needle` into per-64-row match masks, calling `sink`
/// with `(group_index, mask)` for every group with at least one match.
fn scan_groups(
    col: &ByteSlicedColumn,
    op: CmpOp,
    needle: u32,
    stats: &mut ByteSliceStats,
    mut sink: impl FnMut(usize, u64),
) {
    let rows = col.len();
    let planes = col.planes();
    let (needle_bytes, overflow) = col.needle_bytes(needle);
    if overflow {
        // Needle above every storable value: constant outcome per op.
        let all = matches!(op, CmpOp::Ne | CmpOp::Lt | CmpOp::Le);
        if all {
            for g in 0..rows.div_ceil(64) {
                let n = (rows - g * 64).min(64);
                sink(g, if n >= 64 { u64::MAX } else { (1u64 << n) - 1 });
            }
        }
        return;
    }

    for g in 0..rows.div_ceil(64) {
        let base = g * 64;
        let n = (rows - base).min(64);
        let group_mask = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
        let (mut lt, mut gt) = (0u64, 0u64);
        let mut eq = group_mask;
        for k in (0..planes).rev() {
            if eq == 0 {
                stats.plane_groups_skipped += (k + 1) as u64;
                break;
            }
            stats.plane_groups_read += 1;
            let (plt, pgt, peq) = cmp_bytes(&col.plane(k)[base..], needle_bytes[k], n);
            lt |= eq & plt;
            gt |= eq & pgt;
            eq &= peq;
        }
        let mask = match op {
            CmpOp::Eq => eq,
            CmpOp::Ne => group_mask & !eq,
            CmpOp::Lt => lt,
            CmpOp::Le => lt | eq,
            CmpOp::Gt => gt,
            CmpOp::Ge => gt | eq,
        };
        if mask != 0 {
            sink(g, mask);
        }
    }
}

/// Scan one byte-sliced predicate. `Count` mode accumulates popcounts
/// only; `Positions` mode emits a [`PosList`].
pub fn scan_bytesliced(
    col: &ByteSlicedColumn,
    op: CmpOp,
    needle: u32,
    mode: OutputMode,
) -> (ScanOutput, ByteSliceStats) {
    let mut stats = ByteSliceStats::default();
    match mode {
        OutputMode::Count => {
            let mut total = 0u64;
            scan_groups(col, op, needle, &mut stats, |_, mask| {
                total += mask_popcount(&[mask]);
            });
            (ScanOutput::Count(total), stats)
        }
        OutputMode::Positions => {
            let mut out: Vec<u32> = Vec::new();
            scan_groups(col, op, needle, &mut stats, |g, mask| {
                let mut bits = mask;
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    out.push((g * 64 + i) as u32);
                    bits &= bits - 1;
                }
            });
            (ScanOutput::Positions(PosList::from_vec(out)), stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_storage::NativeType;

    fn xorshift(seed: u64) -> impl Iterator<Item = u32> {
        let mut state = seed | 1;
        std::iter::repeat_with(move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u32
        })
    }

    fn check(values: &[u32], op: CmpOp, needle: u32) {
        let col = ByteSlicedColumn::encode(values);
        let expect: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.cmp_op(op, needle))
            .map(|(i, _)| i as u32)
            .collect();
        let (got, _) = scan_bytesliced(&col, op, needle, OutputMode::Positions);
        assert_eq!(
            got.positions().unwrap().as_slice(),
            &expect[..],
            "op={op:?} needle={needle}"
        );
        let (got, _) = scan_bytesliced(&col, op, needle, OutputMode::Count);
        assert_eq!(got.count(), expect.len() as u64);
    }

    #[test]
    fn all_ops_all_plane_counts() {
        for max in [200u32, 60_000, 1 << 20, u32::MAX - 1] {
            let values: Vec<u32> = xorshift(max as u64)
                .take(500)
                .map(|v| v % max)
                .chain([0, max])
                .collect();
            for op in CmpOp::ALL {
                for needle in [0u32, 1, max / 2, max, max.saturating_add(1), u32::MAX] {
                    check(&values, op, needle);
                }
            }
        }
    }

    #[test]
    fn group_sizes_and_tails() {
        for rows in [0usize, 1, 63, 64, 65, 128, 1000] {
            let values: Vec<u32> = (0..rows as u32).map(|i| i * 3).collect();
            check(&values, CmpOp::Lt, (rows as u32) * 3 / 2);
        }
    }

    #[test]
    fn early_exit_skips_low_planes() {
        // Wide random values, selective equality: most groups decide on
        // the top plane.
        let values: Vec<u32> = xorshift(42).take(64 * 100).collect();
        let col = ByteSlicedColumn::encode(&values);
        let (_, stats) = scan_bytesliced(&col, CmpOp::Eq, values[17], OutputMode::Count);
        assert!(
            stats.plane_groups_skipped > stats.plane_groups_read,
            "{stats:?}"
        );
    }

    #[test]
    fn count_equals_positions() {
        let values: Vec<u32> = xorshift(9).take(777).map(|v| v % 1000).collect();
        let col = ByteSlicedColumn::encode(&values);
        for op in CmpOp::ALL {
            let (c, _) = scan_bytesliced(&col, op, 500, OutputMode::Count);
            let (p, _) = scan_bytesliced(&col, op, 500, OutputMode::Positions);
            assert_eq!(c.count(), p.count());
            assert!(matches!(c, ScanOutput::Count(_)));
        }
    }
}
