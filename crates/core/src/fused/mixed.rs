//! Mixed-width fused chains — the §V splitting case.
//!
//! "Looking at the example, this becomes important if the first column uses
//! 4-byte integers and the second column 8-byte integers. The first
//! predicate would generate four indexes into the second column, but the
//! 128-bit AVX register can only hold two of the 8-byte integers. In this
//! case, the JIT compiler has to split the list of indexes and perform
//! twice the number of iterations when evaluating the following predicate."
//!
//! This module implements exactly that at 512-bit width: the `u32` driver
//! accumulates 16 positions per list; the `u64` follow-up predicate splits
//! the list into two 8-lane halves, gathers each with `vpgatherdq` (dword
//! indexes → qword values) and recombines the two 8-bit masks into one
//! 16-bit mask for the compress step.

#![cfg(target_arch = "x86_64")]
#![allow(unsafe_op_in_unsafe_fn)] // one kernel = one contiguous unsafe context

use std::arch::x86_64::*;

use fts_simd::has_avx512;
use fts_storage::{CmpOp, PosList};

use crate::fused::MERGE16;
use crate::pred::{OutputMode, ScanOutput, TypedPred};

const LANES: usize = 16;

#[inline]
#[target_feature(enable = "avx512f,avx512vl,avx512dq")]
unsafe fn mask_cmp_u64(k: __mmask8, op: CmpOp, a: __m512i, b: __m512i) -> __mmask8 {
    match op {
        CmpOp::Eq => _mm512_mask_cmpeq_epu64_mask(k, a, b),
        CmpOp::Ne => _mm512_mask_cmpneq_epu64_mask(k, a, b),
        CmpOp::Lt => _mm512_mask_cmplt_epu64_mask(k, a, b),
        CmpOp::Le => _mm512_mask_cmple_epu64_mask(k, a, b),
        CmpOp::Gt => _mm512_mask_cmpgt_epu64_mask(k, a, b),
        CmpOp::Ge => _mm512_mask_cmpge_epu64_mask(k, a, b),
    }
}

#[inline]
#[target_feature(enable = "avx512f,avx512vl,avx512dq")]
unsafe fn cmp_u32(op: CmpOp, a: __m512i, b: __m512i) -> __mmask16 {
    match op {
        CmpOp::Eq => _mm512_cmpeq_epu32_mask(a, b),
        CmpOp::Ne => _mm512_cmpneq_epu32_mask(a, b),
        CmpOp::Lt => _mm512_cmplt_epu32_mask(a, b),
        CmpOp::Le => _mm512_cmple_epu32_mask(a, b),
        CmpOp::Gt => _mm512_cmpgt_epu32_mask(a, b),
        CmpOp::Ge => _mm512_cmpge_epu32_mask(a, b),
    }
}

#[inline]
#[target_feature(enable = "avx512f,avx512vl,avx512dq")]
unsafe fn mask_cmp_u32(k: __mmask16, op: CmpOp, a: __m512i, b: __m512i) -> __mmask16 {
    match op {
        CmpOp::Eq => _mm512_mask_cmpeq_epu32_mask(k, a, b),
        CmpOp::Ne => _mm512_mask_cmpneq_epu32_mask(k, a, b),
        CmpOp::Lt => _mm512_mask_cmplt_epu32_mask(k, a, b),
        CmpOp::Le => _mm512_mask_cmple_epu32_mask(k, a, b),
        CmpOp::Gt => _mm512_mask_cmpgt_epu32_mask(k, a, b),
        CmpOp::Ge => _mm512_mask_cmpge_epu32_mask(k, a, b),
    }
}

struct State<'a> {
    p1: &'a TypedPred<'a, u64>,
    needle1: __m512i,
    plist: __m512i,
    count: usize,
    out: Vec<u32>,
    total: u64,
}

/// Evaluate the pending positions against the 8-byte column: split the
/// 16-entry list into two halves, gather qwords with dword indexes, and
/// recombine the masks (the "twice the number of iterations" of §V).
#[target_feature(enable = "avx512f,avx512vl,avx512dq,avx2,popcnt")]
unsafe fn flush<const EMIT: bool>(st: &mut State<'_>) {
    let c = st.count;
    if c == 0 {
        return;
    }
    let plist = st.plist;
    st.plist = _mm512_setzero_si512();
    st.count = 0;

    let base = st.p1.data.as_ptr() as *const i64;
    let idx_lo = _mm512_castsi512_si256(plist);
    let idx_hi = _mm512_extracti64x4_epi64::<1>(plist);
    let k_lo = fts_simd::model::lane_mask(c.min(8)) as __mmask8;
    let k_hi = fts_simd::model::lane_mask(c.saturating_sub(8)) as __mmask8;

    let vals_lo = _mm512_mask_i32gather_epi64::<8>(_mm512_setzero_si512(), k_lo, idx_lo, base);
    let m_lo = mask_cmp_u64(k_lo, st.p1.op, vals_lo, st.needle1);
    let m_hi = if k_hi != 0 {
        let vals_hi = _mm512_mask_i32gather_epi64::<8>(_mm512_setzero_si512(), k_hi, idx_hi, base);
        mask_cmp_u64(k_hi, st.p1.op, vals_hi, st.needle1)
    } else {
        0
    };
    let k2: __mmask16 = (m_lo as u16) | ((m_hi as u16) << 8);
    let m2 = (k2 as u32).count_ones() as usize;
    if m2 == 0 {
        return;
    }
    let fresh2 = _mm512_maskz_compress_epi32(k2, plist);
    st.total += m2 as u64;
    if EMIT {
        let len = st.out.len();
        st.out.reserve(LANES);
        _mm512_storeu_epi32(st.out.as_mut_ptr().add(len) as *mut i32, fresh2);
        st.out.set_len(len + m2);
    }
}

#[target_feature(enable = "avx512f,avx512vl,avx512dq,avx2,popcnt")]
unsafe fn kernel<const EMIT: bool>(
    p0: &TypedPred<'_, u32>,
    p1: &TypedPred<'_, u64>,
) -> (u64, Vec<u32>) {
    let rows = p0.data.len();
    let mut st = State {
        p1,
        needle1: _mm512_set1_epi64(p1.needle as i64),
        plist: _mm512_setzero_si512(),
        count: 0,
        out: Vec::new(),
        total: 0,
    };
    let col0 = p0.data.as_ptr() as *const i32;
    let needle0 = _mm512_set1_epi32(p0.needle as i32);
    let iota = _mm512_loadu_epi32(super::avx512::IOTA16_PUB.as_ptr() as *const i32);

    let push = |st: &mut State<'_>, fresh: __m512i, m: usize| {
        if st.count + m > LANES {
            flush::<EMIT>(st);
            st.plist = fresh;
            st.count = m;
        } else {
            let ctl = _mm512_loadu_epi32(MERGE16[st.count].as_ptr() as *const i32);
            st.plist = _mm512_permutex2var_epi32(st.plist, ctl, fresh);
            st.count += m;
        }
        if st.count == LANES {
            flush::<EMIT>(st);
        }
    };

    let full_blocks = rows / LANES;
    for blk in 0..full_blocks {
        let v = _mm512_loadu_epi32(col0.add(blk * LANES));
        let k = cmp_u32(p0.op, v, needle0);
        if k == 0 {
            continue;
        }
        let m = (k as u32).count_ones() as usize;
        let idx = _mm512_add_epi32(iota, _mm512_set1_epi32((blk * LANES) as i32));
        push(&mut st, _mm512_maskz_compress_epi32(k, idx), m);
    }
    let tail = rows % LANES;
    if tail != 0 {
        let base = full_blocks * LANES;
        let kt = fts_simd::model::lane_mask(tail) as __mmask16;
        let v = _mm512_maskz_loadu_epi32(kt, col0.add(base));
        let k = mask_cmp_u32(kt, p0.op, v, needle0);
        if k != 0 {
            let m = (k as u32).count_ones() as usize;
            let idx = _mm512_add_epi32(iota, _mm512_set1_epi32(base as i32));
            push(&mut st, _mm512_maskz_compress_epi32(k, idx), m);
        }
    }
    flush::<EMIT>(&mut st);
    (st.total, st.out)
}

/// Fused scan of a 4-byte driver predicate followed by an 8-byte predicate,
/// splitting the position list exactly as paper §V prescribes.
///
/// Panics without AVX-512 or on ragged columns.
pub fn fused_scan_u32_u64(
    p0: &TypedPred<'_, u32>,
    p1: &TypedPred<'_, u64>,
    mode: OutputMode,
) -> ScanOutput {
    assert!(has_avx512(), "AVX-512 not available on this host");
    assert_eq!(
        p0.data.len(),
        p1.data.len(),
        "chain columns must have equal length"
    );
    assert!(
        p0.data.len() <= i32::MAX as usize,
        "chunk exceeds 32-bit gather index range"
    );
    // SAFETY: AVX-512 presence asserted; columns validated.
    match mode {
        OutputMode::Count => {
            let (total, _) = unsafe { kernel::<false>(p0, p1) };
            ScanOutput::Count(total)
        }
        OutputMode::Positions => {
            let (_, out) = unsafe { kernel::<true>(p0, p1) };
            ScanOutput::Positions(PosList::from_vec(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skip() -> bool {
        if !has_avx512() {
            eprintln!("skipping: no AVX-512 on this host");
            return true;
        }
        false
    }

    fn reference(p0: &TypedPred<'_, u32>, p1: &TypedPred<'_, u64>) -> Vec<u32> {
        (0..p0.data.len())
            .filter(|&r| p0.matches(r) && p1.matches(r))
            .map(|r| r as u32)
            .collect()
    }

    #[test]
    fn splits_position_list_correctly() {
        if skip() {
            return;
        }
        let a: Vec<u32> = (0..3000).map(|i| i % 5).collect();
        let b: Vec<u64> = (0..3000).map(|i| (i as u64 * 7) % 9).collect();
        for op0 in CmpOp::ALL {
            for op1 in CmpOp::ALL {
                let p0 = TypedPred::new(&a[..], op0, 2u32);
                let p1 = TypedPred::new(&b[..], op1, 4u64);
                let expected = reference(&p0, &p1);
                let got = fused_scan_u32_u64(&p0, &p1, OutputMode::Positions);
                assert_eq!(
                    got.positions().unwrap().as_slice(),
                    &expected[..],
                    "{op0} {op1}"
                );
                let got = fused_scan_u32_u64(&p0, &p1, OutputMode::Count);
                assert_eq!(got.count(), expected.len() as u64, "{op0} {op1} count");
            }
        }
    }

    #[test]
    fn large_u64_values_beyond_32_bits() {
        if skip() {
            return;
        }
        let a: Vec<u32> = (0..500).map(|i| i % 2).collect();
        let big = u64::MAX - 3;
        let b: Vec<u64> = (0..500)
            .map(|i| if i % 3 == 0 { big } else { i as u64 })
            .collect();
        let p0 = TypedPred::eq(&a[..], 0u32);
        let p1 = TypedPred::eq(&b[..], big);
        let expected = reference(&p0, &p1);
        let got = fused_scan_u32_u64(&p0, &p1, OutputMode::Positions);
        assert_eq!(got.positions().unwrap().as_slice(), &expected[..]);
    }

    #[test]
    fn partial_lists_under_nine_entries_use_one_gather() {
        if skip() {
            return;
        }
        // Only 3 matches total: the flush path with k_hi == 0.
        let mut a = vec![0u32; 100];
        a[10] = 5;
        a[50] = 5;
        a[99] = 5;
        let b: Vec<u64> = (0..100).map(|i| i as u64 % 2).collect();
        let p0 = TypedPred::eq(&a[..], 5u32);
        let p1 = TypedPred::eq(&b[..], 0u64);
        let expected = reference(&p0, &p1);
        let got = fused_scan_u32_u64(&p0, &p1, OutputMode::Positions);
        assert_eq!(got.positions().unwrap().as_slice(), &expected[..]);
    }

    #[test]
    fn tails_and_empty() {
        if skip() {
            return;
        }
        for rows in [0usize, 1, 15, 16, 17, 33] {
            let a: Vec<u32> = (0..rows as u32).map(|i| i % 2).collect();
            let b: Vec<u64> = (0..rows as u64).map(|i| i % 3).collect();
            let p0 = TypedPred::eq(&a[..], 0u32);
            let p1 = TypedPred::eq(&b[..], 0u64);
            let expected = reference(&p0, &p1);
            let got = fused_scan_u32_u64(&p0, &p1, OutputMode::Positions);
            assert_eq!(
                got.positions().unwrap().as_slice(),
                &expected[..],
                "rows={rows}"
            );
        }
    }
}
