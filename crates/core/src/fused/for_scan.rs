//! Fused scan over **frame-of-reference** columns — compressed-domain
//! scanning v2 (ROADMAP item 4).
//!
//! The unit of work is one 128-value FoR block ([`FOR_BLOCK_LEN`]):
//!
//! 1. **Header resolution**: every FoR predicate is rewritten into the
//!    block's delta domain ([`ForColumn::rewrite`]). A `Never` outcome
//!    skips the whole block without touching its payload (block pruning);
//!    `Always` predicates drop out of the block's chain.
//! 2. **Fused decode + compare**: surviving FoR predicates decode their
//!    block's *deltas* (no frame add — the literal was shifted instead,
//!    that is the compressed-domain comparison) through the vectorized
//!    kernels of `fts-simd::decode` into a cache-resident scratch block,
//!    and all predicates — decoded deltas and plain columns alike — are
//!    evaluated as 128-bit match masks combined in registers.
//! 3. **Output**: `Count` mode accumulates `mask_popcount` over the block
//!    masks and **never materializes a position list** ("Faster
//!    Positional Population Counts", PAPERS.md); `Positions` mode emits
//!    set bits.
//!
//! ISA selection (AVX-512 mask compares vs portable branch-free scalar)
//! goes through `fts_simd::detect()`, so the host-clamped
//! `FTS_FORCE_SIMD` override gates these kernels like every other.

use fts_simd::{decode_for_block, mask_popcount, SimdLevel};
use fts_storage::for_block::{BlockPred, ForColumn, FOR_BLOCK_LEN};
use fts_storage::{CmpOp, NativeType, PosList};

use crate::fused::MAX_PREDICATES;
use crate::pred::{OutputMode, ScanOutput, TypedPred};

/// One predicate of a (possibly) frame-of-reference chain.
#[derive(Debug, Clone, Copy)]
pub enum ForPred<'a> {
    /// Plain `u32` column.
    Plain(TypedPred<'a, u32>),
    /// FoR column compared in the per-block delta domain.
    For {
        /// The FoR column.
        col: &'a ForColumn,
        /// Comparison operator.
        op: CmpOp,
        /// Literal in the *value* domain (rewritten per block).
        needle: u32,
    },
}

impl<'a> ForPred<'a> {
    fn rows(&self) -> usize {
        match self {
            ForPred::Plain(p) => p.data.len(),
            ForPred::For { col, .. } => col.len(),
        }
    }

    /// Row-wise evaluation (the reference path).
    pub fn matches(&self, row: usize) -> bool {
        match self {
            ForPred::Plain(p) => p.matches(row),
            ForPred::For { col, op, needle } => col.get(row).cmp_op(*op, *needle),
        }
    }
}

/// Trivially-correct reference scan for FoR chains.
pub fn scan_for_reference(preds: &[ForPred<'_>]) -> PosList {
    let Some(first) = preds.first() else {
        return PosList::new();
    };
    let rows = first.rows();
    for p in preds {
        assert_eq!(p.rows(), rows, "chain columns must have equal length");
    }
    let mut out = PosList::new();
    for row in 0..rows {
        if preds.iter().all(|p| p.matches(row)) {
            out.push(row as u32);
        }
    }
    out
}

/// Errors of the FoR fused scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForScanError {
    /// Chain longer than [`MAX_PREDICATES`].
    BadChain(usize),
    /// Columns disagree on the row count.
    LengthMismatch,
    /// More rows than a 32-bit position can address.
    ColumnTooLarge,
}

impl std::fmt::Display for ForScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForScanError::BadChain(n) => write!(f, "unsupported chain length {n}"),
            ForScanError::LengthMismatch => write!(f, "columns have different lengths"),
            ForScanError::ColumnTooLarge => write!(f, "rows exceed the 32-bit position range"),
        }
    }
}

impl std::error::Error for ForScanError {}

/// Per-block scan statistics (feed the layout telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForScanStats {
    /// Blocks whose header resolved the whole chain (payload untouched).
    pub blocks_pruned: u64,
    /// Blocks whose payload was decoded and compared.
    pub blocks_scanned: u64,
}

/// A 128-row match mask (two 64-bit words).
type BlockMask = [u64; 2];

fn full_mask(rows: usize) -> BlockMask {
    debug_assert!(rows <= FOR_BLOCK_LEN);
    match rows {
        128 => [u64::MAX; 2],
        r if r >= 64 => [u64::MAX, (1u64 << (r - 64)) - 1],
        r => [(1u64 << r) - 1, 0],
    }
}

/// AND `mask` with `data[i] OP needle` for the first `rows` lanes.
fn and_cmp_mask(mask: &mut BlockMask, data: &[u32], op: CmpOp, needle: u32, rows: usize) {
    #[cfg(target_arch = "x86_64")]
    if fts_simd::detect() == SimdLevel::Avx512 {
        // SAFETY: AVX-512 F+VL+BW+DQ presence established by detect().
        unsafe { and_cmp_mask_avx512(mask, data, op, needle, rows) };
        return;
    }
    and_cmp_mask_scalar(mask, data, op, needle, rows);
}

/// Branch-free scalar mask compare (auto-vectorizes on AVX2 hosts).
fn and_cmp_mask_scalar(mask: &mut BlockMask, data: &[u32], op: CmpOp, needle: u32, rows: usize) {
    for (w, m) in mask.iter_mut().enumerate() {
        if *m == 0 {
            continue;
        }
        let base = w * 64;
        if base >= rows {
            break;
        }
        let n = (rows - base).min(64);
        let mut bits = 0u64;
        let lane = &data[base..base + n];
        match op {
            CmpOp::Eq => {
                for (i, &v) in lane.iter().enumerate() {
                    bits |= ((v == needle) as u64) << i;
                }
            }
            CmpOp::Ne => {
                for (i, &v) in lane.iter().enumerate() {
                    bits |= ((v != needle) as u64) << i;
                }
            }
            CmpOp::Lt => {
                for (i, &v) in lane.iter().enumerate() {
                    bits |= ((v < needle) as u64) << i;
                }
            }
            CmpOp::Le => {
                for (i, &v) in lane.iter().enumerate() {
                    bits |= ((v <= needle) as u64) << i;
                }
            }
            CmpOp::Gt => {
                for (i, &v) in lane.iter().enumerate() {
                    bits |= ((v > needle) as u64) << i;
                }
            }
            CmpOp::Ge => {
                for (i, &v) in lane.iter().enumerate() {
                    bits |= ((v >= needle) as u64) << i;
                }
            }
        }
        *m &= bits;
    }
}

/// 16-lane AVX-512 mask compare, four compares per 64-bit mask word.
///
/// # Safety
/// Requires AVX-512 F+VL+DQ (checked by the caller via `detect()`);
/// `data` must hold at least `rows` values.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx512bw,avx512dq")]
#[allow(unsafe_op_in_unsafe_fn)] // one kernel = one contiguous unsafe context
unsafe fn and_cmp_mask_avx512(
    mask: &mut BlockMask,
    data: &[u32],
    op: CmpOp,
    needle: u32,
    rows: usize,
) {
    use std::arch::x86_64::*;
    let nsplat = _mm512_set1_epi32(needle as i32);
    let mut lane = 0usize;
    for m in mask.iter_mut() {
        if lane >= rows {
            break;
        }
        if *m == 0 {
            lane += 64;
            continue;
        }
        let mut word = 0u64;
        for part in 0..4usize {
            let at = lane + part * 16;
            if at >= rows {
                break;
            }
            let n = (rows - at).min(16);
            let load = fts_simd::model::lane_mask(n) as __mmask16;
            let v = _mm512_maskz_loadu_epi32(load, data.as_ptr().add(at) as *const i32);
            let k = match op {
                CmpOp::Eq => _mm512_mask_cmpeq_epu32_mask(load, v, nsplat),
                CmpOp::Ne => _mm512_mask_cmpneq_epu32_mask(load, v, nsplat),
                CmpOp::Lt => _mm512_mask_cmplt_epu32_mask(load, v, nsplat),
                CmpOp::Le => _mm512_mask_cmple_epu32_mask(load, v, nsplat),
                CmpOp::Gt => _mm512_mask_cmpgt_epu32_mask(load, v, nsplat),
                CmpOp::Ge => _mm512_mask_cmpge_epu32_mask(load, v, nsplat),
            };
            word |= (k as u64) << (part * 16);
        }
        *m &= word;
        lane += 64;
    }
}

/// Run a fused scan over a chain mixing FoR and plain `u32` columns.
/// Returns the output plus block-pruning statistics.
pub fn fused_scan_for(
    preds: &[ForPred<'_>],
    mode: OutputMode,
) -> Result<(ScanOutput, ForScanStats), ForScanError> {
    if preds.len() > MAX_PREDICATES {
        return Err(ForScanError::BadChain(preds.len()));
    }
    let empty = |mode| match mode {
        OutputMode::Count => ScanOutput::Count(0),
        OutputMode::Positions => ScanOutput::Positions(PosList::new()),
    };
    let Some(first) = preds.first() else {
        return Ok((empty(mode), ForScanStats::default()));
    };
    let rows = first.rows();
    for p in preds {
        if p.rows() != rows {
            return Err(ForScanError::LengthMismatch);
        }
    }
    if rows > i32::MAX as usize {
        return Err(ForScanError::ColumnTooLarge);
    }

    let mut stats = ForScanStats::default();
    let mut total = 0u64;
    let mut out: Vec<u32> = Vec::new();
    // One delta scratch block per chain slot (only FoR slots use theirs).
    let mut scratch = vec![[0u32; FOR_BLOCK_LEN]; preds.len()];

    let blocks = rows.div_ceil(FOR_BLOCK_LEN);
    'blocks: for b in 0..blocks {
        let start = b * FOR_BLOCK_LEN;
        let rows_b = (rows - start).min(FOR_BLOCK_LEN);
        let mut mask = full_mask(rows_b);
        let mut compared = false;

        for (slot, p) in preds.iter().enumerate() {
            match p {
                ForPred::Plain(tp) => {
                    and_cmp_mask(
                        &mut mask,
                        &tp.data[start..start + rows_b],
                        tp.op,
                        tp.needle,
                        rows_b,
                    );
                    compared = true;
                }
                ForPred::For { col, op, needle } => match col.rewrite(*op, *needle, b) {
                    BlockPred::Never => {
                        stats.blocks_pruned += 1;
                        continue 'blocks;
                    }
                    BlockPred::Always => {}
                    BlockPred::Cmp(delta) => {
                        let h = col.headers()[b];
                        let words = &col.words()[h.offset as usize..];
                        let buf = &mut scratch[slot][..rows_b];
                        // Compressed-domain compare: decode raw deltas
                        // (min = 0) and compare against the shifted literal.
                        decode_for_block(words, h.bits, 0, buf);
                        and_cmp_mask(&mut mask, buf, *op, delta, rows_b);
                        compared = true;
                    }
                },
            }
            if mask == [0, 0] {
                break;
            }
        }
        if compared {
            stats.blocks_scanned += 1;
        } else {
            stats.blocks_pruned += 1; // every predicate was Always
        }

        match mode {
            OutputMode::Count => total += mask_popcount(&mask),
            OutputMode::Positions => {
                for (w, &m) in mask.iter().enumerate() {
                    let mut bits = m;
                    while bits != 0 {
                        let i = bits.trailing_zeros() as usize;
                        out.push((start + w * 64 + i) as u32);
                        bits &= bits - 1;
                    }
                }
            }
        }
    }

    let output = match mode {
        OutputMode::Count => ScanOutput::Count(total),
        OutputMode::Positions => ScanOutput::Positions(PosList::from_vec(out)),
    };
    Ok((output, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(seed: u64) -> impl Iterator<Item = u32> {
        let mut state = seed | 1;
        std::iter::repeat_with(move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u32
        })
    }

    fn check(preds: &[ForPred<'_>]) {
        let expected = scan_for_reference(preds);
        let (got, _) = fused_scan_for(preds, OutputMode::Positions).unwrap();
        assert_eq!(got.positions().unwrap(), &expected);
        let (got, _) = fused_scan_for(preds, OutputMode::Count).unwrap();
        assert_eq!(got.count(), expected.len() as u64);
    }

    #[test]
    fn single_for_predicate_all_ops() {
        for rows in [0usize, 1, 63, 64, 127, 128, 129, 1000] {
            let values: Vec<u32> = (0..rows as u32).map(|i| 10_000 + i % 200).collect();
            let col = ForColumn::encode(&values);
            for op in CmpOp::ALL {
                for needle in [0u32, 9_999, 10_000, 10_100, 10_199, 10_200, u32::MAX] {
                    let preds = [ForPred::For {
                        col: &col,
                        op,
                        needle,
                    }];
                    check(&preds);
                }
            }
        }
    }

    #[test]
    fn mixed_for_plain_chain() {
        let rows = 777usize;
        let a: Vec<u32> = xorshift(1).take(rows).map(|v| 500_000 + v % 1000).collect();
        let b: Vec<u32> = (0..rows as u32).map(|i| i % 5).collect();
        let col = ForColumn::encode(&a);
        for op in CmpOp::ALL {
            let preds = [
                ForPred::For {
                    col: &col,
                    op,
                    needle: 500_500,
                },
                ForPred::Plain(TypedPred::eq(&b[..], 2)),
            ];
            check(&preds);
        }
    }

    #[test]
    fn three_for_columns() {
        let rows = 513usize;
        let cols: Vec<ForColumn> = (0..3u64)
            .map(|s| {
                let v: Vec<u32> = xorshift(s + 5).take(rows).map(|v| v % 4096).collect();
                ForColumn::encode(&v)
            })
            .collect();
        let preds: Vec<ForPred<'_>> = cols
            .iter()
            .map(|col| ForPred::For {
                col,
                op: CmpOp::Le,
                needle: 2048,
            })
            .collect();
        check(&preds);
    }

    #[test]
    fn block_pruning_fires_on_clustered_data() {
        // Values ascend block by block; a selective range predicate can
        // only match inside a few blocks — the rest resolve from headers.
        let values: Vec<u32> = (0..4096u32).collect();
        let col = ForColumn::encode(&values);
        let preds = [ForPred::For {
            col: &col,
            op: CmpOp::Lt,
            needle: 100,
        }];
        let (got, stats) = fused_scan_for(&preds, OutputMode::Count).unwrap();
        assert_eq!(got.count(), 100);
        assert!(
            stats.blocks_pruned >= 30,
            "expected most of the 32 blocks pruned, got {stats:?}"
        );
        check(&preds);
    }

    #[test]
    fn count_never_materializes() {
        let values: Vec<u32> = xorshift(3).take(10_000).map(|v| v % 100).collect();
        let col = ForColumn::encode(&values);
        let preds = [ForPred::For {
            col: &col,
            op: CmpOp::Eq,
            needle: 7,
        }];
        let (got, _) = fused_scan_for(&preds, OutputMode::Count).unwrap();
        assert!(matches!(got, ScanOutput::Count(_)));
        let expect = values.iter().filter(|&&v| v == 7).count() as u64;
        assert_eq!(got.count(), expect);
    }

    #[test]
    fn validation() {
        let a = ForColumn::encode(&[1, 2, 3]);
        let b: Vec<u32> = vec![0; 5];
        let preds = [
            ForPred::For {
                col: &a,
                op: CmpOp::Eq,
                needle: 1,
            },
            ForPred::Plain(TypedPred::eq(&b[..], 0)),
        ];
        assert_eq!(
            fused_scan_for(&preds, OutputMode::Count).unwrap_err(),
            ForScanError::LengthMismatch
        );
        assert_eq!(fused_scan_for(&[], OutputMode::Count).unwrap().0.count(), 0);
    }
}
