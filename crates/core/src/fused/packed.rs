//! Fused Table Scan over **bit-packed** columns — the paper's §VII future
//! work implemented: null-suppressed (fixed-width bit-packed) columns
//! participate in the fused chain without being decompressed to memory.
//!
//! * **Driver unpack** (widths ≤ 16 bits): one masked word load per
//!   16-value block, then `vpermd` selects each lane's low word, a second
//!   `vpermd` its successor, and the VBMI2 funnel shift `vpshrdvd`
//!   extracts the value — the Willhalm-style unpack-and-compare pipeline,
//!   fused with the compare. Wider widths unpack the block scalar-side
//!   (still inside the fused loop).
//! * **Gather-side extraction** — the challenge the paper names: the
//!   position list is multiplied by the bit width, split into word index
//!   and bit offset, *two* masked `vpgatherdd`s fetch each value's word
//!   pair (the pack buffer's guard word makes `word+1` always readable),
//!   and the same funnel shift extracts the value before the masked
//!   compare.
//!
//! Values are unsigned (the packed domain); literals above the width's
//! maximum are resolved to constant outcomes before the kernel runs.

#![cfg(target_arch = "x86_64")]
#![allow(unsafe_op_in_unsafe_fn)] // one kernel = one contiguous unsafe context

use std::arch::x86_64::*;

use fts_simd::model::lane_mask;
use fts_storage::bitpack::{mask_of, PackedColumn};
use fts_storage::{CmpOp, PosList};

use crate::fused::{MAX_PREDICATES, MERGE16};
use crate::pred::{OutputMode, ScanOutput, TypedPred};

const LANES: usize = 16;

/// One predicate of a (possibly) packed chain.
#[derive(Debug, Clone, Copy)]
pub enum PackedPred<'a> {
    /// Plain `u32` column.
    Plain(TypedPred<'a, u32>),
    /// Bit-packed column compared in the packed (unsigned) domain.
    Packed {
        /// The packed column.
        col: &'a PackedColumn,
        /// Comparison operator.
        op: CmpOp,
        /// Literal (any `u32`; out-of-domain literals resolve statically).
        needle: u32,
    },
}

impl<'a> PackedPred<'a> {
    fn rows(&self) -> usize {
        match self {
            PackedPred::Plain(p) => p.data.len(),
            PackedPred::Packed { col, .. } => col.len(),
        }
    }

    /// Row-wise evaluation (the reference path).
    pub fn matches(&self, row: usize) -> bool {
        use fts_storage::NativeType;
        match self {
            PackedPred::Plain(p) => p.matches(row),
            PackedPred::Packed { col, op, needle } => col.get(row).cmp_op(*op, *needle),
        }
    }
}

/// Trivially-correct reference scan for packed chains.
pub fn scan_packed_reference(preds: &[PackedPred<'_>]) -> PosList {
    let Some(first) = preds.first() else {
        return PosList::new();
    };
    let rows = first.rows();
    for p in preds {
        assert_eq!(p.rows(), rows, "chain columns must have equal length");
    }
    let mut out = PosList::new();
    for row in 0..rows {
        if preds.iter().all(|p| p.matches(row)) {
            out.push(row as u32);
        }
    }
    out
}

/// A literal resolved against a packed width.
enum Resolved {
    Never,
    Always,
    Keep,
}

fn resolve(op: CmpOp, needle: u32, bits: u8) -> Resolved {
    if needle <= mask_of(bits) {
        return Resolved::Keep;
    }
    // Every stored value is <= mask < needle.
    match op {
        CmpOp::Eq | CmpOp::Gt | CmpOp::Ge => Resolved::Never,
        CmpOp::Ne | CmpOp::Lt | CmpOp::Le => Resolved::Always,
    }
}

// --- kernel ---------------------------------------------------------------

#[inline]
#[target_feature(enable = "avx512f,avx512vl,avx512dq")]
unsafe fn mask_cmp_u32(k: __mmask16, op: CmpOp, a: __m512i, b: __m512i) -> __mmask16 {
    match op {
        CmpOp::Eq => _mm512_mask_cmpeq_epu32_mask(k, a, b),
        CmpOp::Ne => _mm512_mask_cmpneq_epu32_mask(k, a, b),
        CmpOp::Lt => _mm512_mask_cmplt_epu32_mask(k, a, b),
        CmpOp::Le => _mm512_mask_cmple_epu32_mask(k, a, b),
        CmpOp::Gt => _mm512_mask_cmpgt_epu32_mask(k, a, b),
        CmpOp::Ge => _mm512_mask_cmpge_epu32_mask(k, a, b),
    }
}

/// Per-column plumbing the kernel needs. One short-lived value per column
/// per scan, so the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
enum Source<'a> {
    Plain {
        data: &'a [u32],
    },
    Packed {
        words: &'a [u32],
        bits: u32,
        /// Unpack constants for block alignments 0 and 16 bits (odd widths
        /// alternate): word-index vector, word-index+1 vector, bit-offset
        /// vector. Only built for the vector driver path (bits ≤ 16).
        unpack: Option<[UnpackCtl; 2]>,
    },
}

#[derive(Clone, Copy)]
struct UnpackCtl {
    idx_lo: [u32; 16],
    idx_hi: [u32; 16],
    offs: [u32; 16],
}

fn unpack_ctl(bits: u32, align: u32) -> UnpackCtl {
    let mut idx_lo = [0u32; 16];
    let mut idx_hi = [0u32; 16];
    let mut offs = [0u32; 16];
    for i in 0..16u32 {
        let bit = align + i * bits;
        idx_lo[i as usize] = bit / 32;
        idx_hi[i as usize] = bit / 32 + 1;
        offs[i as usize] = bit % 32;
    }
    UnpackCtl {
        idx_lo,
        idx_hi,
        offs,
    }
}

struct State<'a> {
    sources: &'a [Source<'a>],
    ops: &'a [CmpOp],
    nsplat: [__m512i; MAX_PREDICATES],
    masks: [__m512i; MAX_PREDICATES],
    plists: [__m512i; MAX_PREDICATES],
    counts: [usize; MAX_PREDICATES],
    out: Vec<u32>,
    total: u64,
}

#[target_feature(enable = "avx512f,avx512vl,avx512bw,avx512dq,avx512vbmi2,avx2,popcnt")]
unsafe fn push<const EMIT: bool>(st: &mut State<'_>, s: usize, fresh: __m512i, m: usize) {
    if st.counts[s] + m > LANES {
        flush::<EMIT>(st, s);
        st.plists[s] = fresh;
        st.counts[s] = m;
    } else {
        let ctl = _mm512_loadu_epi32(MERGE16[st.counts[s]].as_ptr() as *const i32);
        st.plists[s] = _mm512_permutex2var_epi32(st.plists[s], ctl, fresh);
        st.counts[s] += m;
    }
    if st.counts[s] == LANES {
        flush::<EMIT>(st, s);
    }
}

#[target_feature(enable = "avx512f,avx512vl,avx512bw,avx512dq,avx512vbmi2,avx2,popcnt")]
unsafe fn flush<const EMIT: bool>(st: &mut State<'_>, s: usize) {
    let c = st.counts[s];
    if c == 0 {
        return;
    }
    let plist = st.plists[s];
    st.plists[s] = _mm512_setzero_si512();
    st.counts[s] = 0;

    let km = lane_mask(c) as __mmask16;
    let vals = match &st.sources[s + 1] {
        Source::Plain { data } => _mm512_mask_i32gather_epi32::<4>(
            _mm512_setzero_si512(),
            km,
            plist,
            data.as_ptr() as *const i32,
        ),
        Source::Packed { words, bits, .. } => {
            // The §VII challenge: extract packed values at gathered
            // positions. bit = pos * bits; lo = words[bit>>5],
            // hi = words[(bit>>5)+1] (guard word!), val = funnel >> (bit&31).
            let bit = _mm512_mullo_epi32(plist, _mm512_set1_epi32(*bits as i32));
            let widx = _mm512_srli_epi32::<5>(bit);
            let off = _mm512_and_si512(bit, _mm512_set1_epi32(31));
            let base = words.as_ptr() as *const i32;
            let lo = _mm512_mask_i32gather_epi32::<4>(_mm512_setzero_si512(), km, widx, base);
            let widx1 = _mm512_add_epi32(widx, _mm512_set1_epi32(1));
            let hi = _mm512_mask_i32gather_epi32::<4>(_mm512_setzero_si512(), km, widx1, base);
            _mm512_and_si512(_mm512_shrdv_epi32(lo, hi, off), st.masks[s + 1])
        }
    };
    let k2 = mask_cmp_u32(km, st.ops[s + 1], vals, st.nsplat[s + 1]);
    let m2 = (k2 as u32).count_ones() as usize;
    if m2 == 0 {
        return;
    }
    let fresh2 = _mm512_maskz_compress_epi32(k2, plist);
    if s + 2 == st.sources.len() {
        emit::<EMIT>(st, fresh2, m2);
    } else {
        push::<EMIT>(st, s + 1, fresh2, m2);
    }
}

#[target_feature(enable = "avx512f,avx512vl,avx512bw,avx512dq,avx512vbmi2,avx2,popcnt")]
unsafe fn emit<const EMIT: bool>(st: &mut State<'_>, fresh: __m512i, m: usize) {
    st.total += m as u64;
    if EMIT {
        let len = st.out.len();
        st.out.reserve(LANES);
        _mm512_storeu_epi32(st.out.as_mut_ptr().add(len) as *mut i32, fresh);
        st.out.set_len(len + m);
    }
}

/// Load and unpack one 16-value block of a packed column (vector path,
/// bits ≤ 16).
#[inline]
#[target_feature(enable = "avx512f,avx512vl,avx512bw,avx512dq,avx512vbmi2,avx2,popcnt")]
unsafe fn unpack_block(
    words: &[u32],
    bits: u32,
    mask: __m512i,
    ctls: &[UnpackCtl; 2],
    block: usize,
) -> __m512i {
    let base_bit = block as u64 * 16 * bits as u64;
    let base_word = (base_bit / 32) as usize;
    let ctl = &ctls[((base_bit % 32) / 16) as usize];
    // Words this block touches: ceil((align + 16*bits)/32) + 1 ≤ 10 for
    // bits ≤ 16; a masked load never reads past them.
    let align = (base_bit % 32) as u32;
    let wcnt = ((align + 16 * bits).div_ceil(32) + 1).min(16) as usize;
    let w = _mm512_maskz_loadu_epi32(
        lane_mask(wcnt) as __mmask16,
        words.as_ptr().add(base_word) as *const i32,
    );
    let lo = _mm512_permutexvar_epi32(_mm512_loadu_epi32(ctl.idx_lo.as_ptr() as *const i32), w);
    let hi = _mm512_permutexvar_epi32(_mm512_loadu_epi32(ctl.idx_hi.as_ptr() as *const i32), w);
    let off = _mm512_loadu_epi32(ctl.offs.as_ptr() as *const i32);
    _mm512_and_si512(_mm512_shrdv_epi32(lo, hi, off), mask)
}

#[target_feature(enable = "avx512f,avx512vl,avx512bw,avx512dq,avx512vbmi2,avx2,popcnt")]
unsafe fn kernel<const EMIT: bool>(
    sources: &[Source<'_>],
    ops: &[CmpOp],
    needles: &[u32],
    rows: usize,
) -> (u64, Vec<u32>) {
    let p = sources.len();
    let mut st = State {
        sources,
        ops,
        nsplat: std::array::from_fn(|i| {
            _mm512_set1_epi32(needles.get(i).copied().unwrap_or(0) as i32)
        }),
        masks: std::array::from_fn(|i| match sources.get(i) {
            Some(Source::Packed { bits, .. }) => _mm512_set1_epi32(mask_of(*bits as u8) as i32),
            _ => _mm512_set1_epi32(-1),
        }),
        plists: [_mm512_setzero_si512(); MAX_PREDICATES],
        counts: [0; MAX_PREDICATES],
        out: Vec::new(),
        total: 0,
    };
    let op0 = ops[0];
    let needle0 = st.nsplat[0];
    let iota = _mm512_loadu_epi32(super::avx512::IOTA16_PUB.as_ptr() as *const i32);
    let mut scalar_buf = [0u32; 16];

    let full_blocks = rows / LANES;
    for blk in 0..full_blocks {
        let v = match &sources[0] {
            Source::Plain { data } => {
                _mm512_loadu_epi32(data.as_ptr().add(blk * LANES) as *const i32)
            }
            Source::Packed {
                words,
                bits,
                unpack: Some(ctls),
            } => unpack_block(words, *bits, st.masks[0], ctls, blk),
            Source::Packed { bits, .. } => {
                // Wide widths (> 16 bits): scalar unpack inside the fused
                // loop. Reconstruct via the column's own accessor-equivalent.
                let Source::Packed { words, .. } = &sources[0] else {
                    unreachable!()
                };
                for (i, slot) in scalar_buf.iter_mut().enumerate() {
                    let bit = (blk * LANES + i) as u64 * *bits as u64;
                    let word = (bit / 32) as usize;
                    let off = (bit % 32) as u32;
                    let w =
                        words[word] as u64 | ((*words.get(word + 1).unwrap_or(&0) as u64) << 32);
                    *slot = (w >> off) as u32 & mask_of(*bits as u8);
                }
                _mm512_loadu_epi32(scalar_buf.as_ptr() as *const i32)
            }
        };
        let k = mask_cmp_u32(u16::MAX, op0, v, needle0);
        if k == 0 {
            continue;
        }
        let m = (k as u32).count_ones() as usize;
        let idx = _mm512_add_epi32(iota, _mm512_set1_epi32((blk * LANES) as i32));
        let fresh = _mm512_maskz_compress_epi32(k, idx);
        if p == 1 {
            emit::<EMIT>(&mut st, fresh, m);
        } else {
            push::<EMIT>(&mut st, 0, fresh, m);
        }
    }

    // Drain stages; the caller evaluates the tail rows afterwards.
    for s in 0..p.saturating_sub(1) {
        flush::<EMIT>(&mut st, s);
    }
    (st.total, st.out)
}

/// Errors of the packed fused scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackedScanError {
    /// Chain longer than [`MAX_PREDICATES`] or empty with packed entries.
    BadChain(usize),
    /// Columns disagree on the row count.
    LengthMismatch,
    /// `rows * bits` of a packed column exceeds the 32-bit bit-address
    /// range the vectorized extraction uses.
    ColumnTooLarge,
    /// The host lacks AVX-512 VBMI2.
    IsaUnavailable,
}

impl std::fmt::Display for PackedScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackedScanError::BadChain(n) => write!(f, "unsupported chain length {n}"),
            PackedScanError::LengthMismatch => write!(f, "columns have different lengths"),
            PackedScanError::ColumnTooLarge => {
                write!(f, "rows x bits exceeds the 32-bit bit-address range")
            }
            PackedScanError::IsaUnavailable => write!(f, "AVX-512 VBMI2 unavailable"),
        }
    }
}

impl std::error::Error for PackedScanError {}

/// Whether the packed kernel can run on this host.
pub fn packed_kernel_available() -> bool {
    fts_simd::has_avx512() && std::arch::is_x86_feature_detected!("avx512vbmi2")
}

/// Run a fused scan over a chain that may mix plain and bit-packed `u32`
/// columns.
pub fn fused_scan_packed(
    preds: &[PackedPred<'_>],
    mode: OutputMode,
) -> Result<ScanOutput, PackedScanError> {
    if preds.len() > MAX_PREDICATES {
        return Err(PackedScanError::BadChain(preds.len()));
    }
    if !packed_kernel_available() {
        return Err(PackedScanError::IsaUnavailable);
    }
    let empty = match mode {
        OutputMode::Count => ScanOutput::Count(0),
        OutputMode::Positions => ScanOutput::Positions(PosList::new()),
    };
    let Some(first) = preds.first() else {
        return Ok(empty);
    };
    let rows = first.rows();
    for p in preds {
        if p.rows() != rows {
            return Err(PackedScanError::LengthMismatch);
        }
    }
    if rows > i32::MAX as usize {
        return Err(PackedScanError::ColumnTooLarge);
    }

    // Resolve out-of-domain literals; drop Always predicates, short-circuit
    // on Never.
    let mut sources = Vec::with_capacity(preds.len());
    let mut ops = Vec::with_capacity(preds.len());
    let mut needles = Vec::with_capacity(preds.len());
    for p in preds {
        match p {
            PackedPred::Plain(tp) => {
                sources.push(Source::Plain { data: tp.data });
                ops.push(tp.op);
                needles.push(tp.needle);
            }
            PackedPred::Packed { col, op, needle } => {
                match resolve(*op, *needle, col.bits()) {
                    Resolved::Never => return Ok(empty),
                    Resolved::Always => continue,
                    Resolved::Keep => {}
                }
                if rows as u64 * col.bits() as u64 >= 1 << 31 {
                    return Err(PackedScanError::ColumnTooLarge);
                }
                let bits = col.bits() as u32;
                let unpack = (bits <= 16).then(|| [unpack_ctl(bits, 0), unpack_ctl(bits, 16)]);
                sources.push(Source::Packed {
                    words: col.words(),
                    bits,
                    unpack,
                });
                ops.push(*op);
                needles.push(*needle);
            }
        }
    }

    // All predicates resolved to Always: everything matches.
    if sources.is_empty() {
        return Ok(match mode {
            OutputMode::Count => ScanOutput::Count(rows as u64),
            OutputMode::Positions => ScanOutput::Positions((0..rows as u32).collect()),
        });
    }

    // SAFETY: ISA checked; columns validated; guard word present in every
    // PackedColumn buffer.
    let (mut total, mut out) = match mode {
        OutputMode::Count => unsafe { kernel::<false>(&sources, &ops, &needles, rows) },
        OutputMode::Positions => unsafe { kernel::<true>(&sources, &ops, &needles, rows) },
    };

    // Tail rows, evaluated row-wise after the kernel's drain.
    for row in rows / LANES * LANES..rows {
        if preds.iter().all(|p| p.matches(row)) {
            total += 1;
            if mode == OutputMode::Positions {
                out.push(row as u32);
            }
        }
    }
    Ok(match mode {
        OutputMode::Count => ScanOutput::Count(total),
        OutputMode::Positions => ScanOutput::Positions(PosList::from_vec(out)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skip() -> bool {
        if !packed_kernel_available() {
            eprintln!("skipping: no AVX-512 VBMI2 on this host");
            return true;
        }
        false
    }

    fn check(preds: &[PackedPred<'_>]) {
        let expected = scan_packed_reference(preds);
        let got = fused_scan_packed(preds, OutputMode::Positions).unwrap();
        assert_eq!(got.positions().unwrap(), &expected);
        let got = fused_scan_packed(preds, OutputMode::Count).unwrap();
        assert_eq!(got.count(), expected.len() as u64);
    }

    #[test]
    fn packed_driver_all_narrow_widths() {
        if skip() {
            return;
        }
        for bits in 1..=16u8 {
            let mask = mask_of(bits);
            let values: Vec<u32> = (0..997u32)
                .map(|i| i.wrapping_mul(2654435761) & mask)
                .collect();
            let col = PackedColumn::pack(&values, bits).unwrap();
            let plain: Vec<u32> = (0..997).map(|i| i % 3).collect();
            for op in CmpOp::ALL {
                let preds = [
                    PackedPred::Packed {
                        col: &col,
                        op,
                        needle: mask / 2,
                    },
                    PackedPred::Plain(TypedPred::eq(&plain[..], 1)),
                ];
                check(&preds);
            }
        }
    }

    #[test]
    fn packed_driver_wide_widths_scalar_unpack() {
        if skip() {
            return;
        }
        for bits in [17u8, 23, 30, 32] {
            let mask = mask_of(bits);
            let values: Vec<u32> = (0..500u32).map(|i| i.wrapping_mul(40503) & mask).collect();
            let col = PackedColumn::pack(&values, bits).unwrap();
            let preds = [PackedPred::Packed {
                col: &col,
                op: CmpOp::Gt,
                needle: mask / 3,
            }];
            check(&preds);
        }
    }

    #[test]
    fn packed_follow_up_gather_extraction() {
        if skip() {
            return;
        }
        // The §VII challenge case: a plain driver, a packed follow-up.
        for bits in [3u8, 7, 11, 16, 21, 29] {
            let mask = mask_of(bits);
            let a: Vec<u32> = (0..1203).map(|i| i % 5).collect();
            let values: Vec<u32> = (0..1203u32)
                .map(|i| i.wrapping_mul(2246822519) & mask)
                .collect();
            let col = PackedColumn::pack(&values, bits).unwrap();
            for op in CmpOp::ALL {
                let preds = [
                    PackedPred::Plain(TypedPred::eq(&a[..], 2)),
                    PackedPred::Packed {
                        col: &col,
                        op,
                        needle: mask / 2,
                    },
                ];
                check(&preds);
            }
        }
    }

    #[test]
    fn fully_packed_three_predicate_chain() {
        if skip() {
            return;
        }
        let cols: Vec<PackedColumn> = [4u8, 9, 13]
            .iter()
            .map(|&bits| {
                let mask = mask_of(bits);
                let values: Vec<u32> = (0..800u32)
                    .map(|i| i.wrapping_mul(9973 + bits as u32) & mask)
                    .collect();
                PackedColumn::pack(&values, bits).unwrap()
            })
            .collect();
        let preds: Vec<PackedPred<'_>> = cols
            .iter()
            .map(|col| PackedPred::Packed {
                col,
                op: CmpOp::Le,
                needle: mask_of(col.bits()) / 2,
            })
            .collect();
        check(&preds);
    }

    #[test]
    fn out_of_domain_literals_resolve_statically() {
        if skip() {
            return;
        }
        let values: Vec<u32> = (0..100).map(|i| i % 8).collect();
        let col = PackedColumn::pack(&values, 3).unwrap();
        // needle 100 > 7: Eq never matches, Ne/Lt always match.
        let never = [PackedPred::Packed {
            col: &col,
            op: CmpOp::Eq,
            needle: 100,
        }];
        assert_eq!(
            fused_scan_packed(&never, OutputMode::Count)
                .unwrap()
                .count(),
            0
        );
        let always = [PackedPred::Packed {
            col: &col,
            op: CmpOp::Lt,
            needle: 100,
        }];
        assert_eq!(
            fused_scan_packed(&always, OutputMode::Count)
                .unwrap()
                .count(),
            100
        );
        let pos = fused_scan_packed(&always, OutputMode::Positions).unwrap();
        assert_eq!(pos.positions().unwrap().len(), 100);
        check(&never);
        check(&always);
    }

    #[test]
    fn tails_and_empty() {
        if skip() {
            return;
        }
        for rows in [0usize, 1, 15, 16, 17, 100] {
            let values: Vec<u32> = (0..rows as u32).map(|i| i % 4).collect();
            let col = PackedColumn::pack(&values, 2).unwrap();
            let preds = [PackedPred::Packed {
                col: &col,
                op: CmpOp::Eq,
                needle: 1,
            }];
            check(&preds);
        }
        assert_eq!(
            fused_scan_packed(&[], OutputMode::Count).unwrap().count(),
            0
        );
    }

    #[test]
    fn validation_errors() {
        if skip() {
            return;
        }
        let a = PackedColumn::pack(&[1, 2], 3).unwrap();
        let b: Vec<u32> = vec![0; 5];
        let preds = [
            PackedPred::Packed {
                col: &a,
                op: CmpOp::Eq,
                needle: 1,
            },
            PackedPred::Plain(TypedPred::eq(&b[..], 0)),
        ];
        assert_eq!(
            fused_scan_packed(&preds, OutputMode::Count),
            Err(PackedScanError::LengthMismatch)
        );
    }
}
