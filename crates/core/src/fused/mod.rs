//! The Fused Table Scan — the paper's contribution (§III).
//!
//! A conjunctive chain of predicates is evaluated in one pass without
//! leaving SIMD mode and without materializing intermediate bitmasks:
//!
//! * predicate 0 (the *driver*) compares whole blocks of its column and
//!   compresses the matching block offsets into a register-resident
//!   **position list**;
//! * every further predicate owns a *stage*: a position-list register plus a
//!   length. Incoming positions are appended with a compress + permutex2var
//!   pair; when the list fills (or cannot take a whole batch) it is
//!   **flushed**: the stage's column is gathered at the listed positions,
//!   compared under mask, and the surviving positions are compressed and
//!   passed to the next stage;
//! * the final stage emits positions (or bumps the match counter).
//!
//! Invariants shared by every engine (scalar model, AVX2, AVX-512, JIT):
//!
//! 1. position lists are left-aligned and **zero-padded** beyond their
//!    length (maskz-compress maintains this for free);
//! 2. a list never exceeds `LANES` entries; when an incoming batch does not
//!    fit, the *old* list is flushed first and the batch starts a new list
//!    (paper §III: "we first process the incomplete list and then start a
//!    new list");
//! 3. batches flow through stages in ascending row order, so emitted
//!    positions are ascending;
//! 4. at end of input, stages drain in ascending order.
//!
//! [`scalar`] is the portable reference engine (any [`fts_storage::NativeType`],
//! any lane count); [`avx2`] and [`avx512`] are the hardware kernels.

pub mod avx2;
pub mod avx512;
pub mod bytesliced;
pub mod for_scan;
pub mod mixed;
pub mod packed;
pub mod scalar;
pub mod w64;

/// Merge-index table entry: lane `i` of `MERGE[count]` selects `plist[i]`
/// for `i < count` and `fresh[i - count]` (table index `N + i - count`)
/// otherwise — the permutex2var control that appends a compressed batch
/// behind an existing position list.
pub const fn merge_index<const N: usize>(count: usize) -> [u32; N] {
    let mut idx = [0u32; N];
    let mut i = 0;
    while i < N {
        idx[i] = if i < count {
            i as u32
        } else {
            (N + i - count) as u32
        };
        i += 1;
    }
    idx
}

/// Merge tables for the three hardware widths (index = current length).
pub static MERGE4: [[u32; 4]; 5] = {
    let mut t = [[0u32; 4]; 5];
    let mut c = 0;
    while c <= 4 {
        t[c] = merge_index::<4>(c);
        c += 1;
    }
    t
};

/// 8-lane merge table (256-bit registers).
pub static MERGE8: [[u32; 8]; 9] = {
    let mut t = [[0u32; 8]; 9];
    let mut c = 0;
    while c <= 8 {
        t[c] = merge_index::<8>(c);
        c += 1;
    }
    t
};

/// 16-lane merge table (512-bit registers).
pub static MERGE16: [[u32; 16]; 17] = {
    let mut t = [[0u32; 16]; 17];
    let mut c = 0;
    while c <= 16 {
        t[c] = merge_index::<16>(c);
        c += 1;
    }
    t
};

/// Maximum number of predicates a single fused kernel invocation supports.
/// Longer chains are split by the engine layer (two fused scans back to
/// back); the paper evaluates up to 5.
pub const MAX_PREDICATES: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_index_shape() {
        assert_eq!(merge_index::<4>(0), [4, 5, 6, 7]); // empty list: all fresh
        assert_eq!(merge_index::<4>(2), [0, 1, 4, 5]);
        assert_eq!(merge_index::<4>(4), [0, 1, 2, 3]); // full list: keep all
        assert_eq!(MERGE16[3][2], 2);
        assert_eq!(MERGE16[3][3], 16);
        assert_eq!(MERGE8[8], [0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn merge_tables_match_const_fn() {
        for (c, row) in MERGE4.iter().enumerate() {
            assert_eq!(*row, merge_index::<4>(c));
        }
        for (c, row) in MERGE16.iter().enumerate() {
            assert_eq!(*row, merge_index::<16>(c));
        }
    }
}
