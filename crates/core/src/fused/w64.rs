//! Native AVX-512 fused kernels for 8-byte element types (`u64`, `i64`,
//! `f64`).
//!
//! Extension beyond the paper's 4-byte running example: values travel in
//! full 512-bit registers (8 lanes), while the position list stays a
//! 256-bit register of eight 32-bit row offsets — so the whole compress /
//! permutex2var machinery runs at dword granularity exactly like the u32
//! kernels, and the follow-up fetch uses `vpgatherdq` (dword indexes →
//! qword values). This is the same dual-width layout §V's splitting
//! discussion leads to, just made a first-class kernel: no list splitting
//! is needed because the list is sized to the value register from the
//! start.

#![cfg(target_arch = "x86_64")]
#![allow(unsafe_op_in_unsafe_fn)] // one kernel = one contiguous unsafe context

use std::arch::x86_64::*;

use fts_simd::has_avx512;
use fts_storage::{CmpOp, NativeType, PosList};

use crate::fused::{MAX_PREDICATES, MERGE8};
use crate::pred::{OutputMode, ScanOutput, TypedPred};

/// Lanes per 512-bit register of 8-byte values.
pub const LANES: usize = 8;

static IOTA8: [u32; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

/// 8-byte element kinds: the lane bits plus the compare family.
pub trait Elem64: NativeType {
    /// The lane's raw bits as `i64` (for `vpbroadcastq`).
    fn bits(self) -> i64;
}

impl Elem64 for u64 {
    #[inline(always)]
    fn bits(self) -> i64 {
        self as i64
    }
}

impl Elem64 for i64 {
    #[inline(always)]
    fn bits(self) -> i64 {
        self
    }
}

impl Elem64 for f64 {
    #[inline(always)]
    fn bits(self) -> i64 {
        self.to_bits() as i64
    }
}

macro_rules! def_cmp64 {
    ($cmp:ident, $mask_cmp:ident,
     $eq:ident, $ne:ident, $lt:ident, $le:ident, $gt:ident, $ge:ident,
     $meq:ident, $mne:ident, $mlt:ident, $mle:ident, $mgt:ident, $mge:ident) => {
        #[inline]
        #[target_feature(enable = "avx512f,avx512vl,avx512dq")]
        unsafe fn $cmp(op: CmpOp, a: __m512i, b: __m512i) -> __mmask8 {
            match op {
                CmpOp::Eq => $eq(a, b),
                CmpOp::Ne => $ne(a, b),
                CmpOp::Lt => $lt(a, b),
                CmpOp::Le => $le(a, b),
                CmpOp::Gt => $gt(a, b),
                CmpOp::Ge => $ge(a, b),
            }
        }
        #[inline]
        #[target_feature(enable = "avx512f,avx512vl,avx512dq")]
        unsafe fn $mask_cmp(k: __mmask8, op: CmpOp, a: __m512i, b: __m512i) -> __mmask8 {
            match op {
                CmpOp::Eq => $meq(k, a, b),
                CmpOp::Ne => $mne(k, a, b),
                CmpOp::Lt => $mlt(k, a, b),
                CmpOp::Le => $mle(k, a, b),
                CmpOp::Gt => $mgt(k, a, b),
                CmpOp::Ge => $mge(k, a, b),
            }
        }
    };
}

def_cmp64!(
    cmp_u64,
    mask_cmp_u64,
    _mm512_cmpeq_epu64_mask,
    _mm512_cmpneq_epu64_mask,
    _mm512_cmplt_epu64_mask,
    _mm512_cmple_epu64_mask,
    _mm512_cmpgt_epu64_mask,
    _mm512_cmpge_epu64_mask,
    _mm512_mask_cmpeq_epu64_mask,
    _mm512_mask_cmpneq_epu64_mask,
    _mm512_mask_cmplt_epu64_mask,
    _mm512_mask_cmple_epu64_mask,
    _mm512_mask_cmpgt_epu64_mask,
    _mm512_mask_cmpge_epu64_mask
);
def_cmp64!(
    cmp_i64,
    mask_cmp_i64,
    _mm512_cmpeq_epi64_mask,
    _mm512_cmpneq_epi64_mask,
    _mm512_cmplt_epi64_mask,
    _mm512_cmple_epi64_mask,
    _mm512_cmpgt_epi64_mask,
    _mm512_cmpge_epi64_mask,
    _mm512_mask_cmpeq_epi64_mask,
    _mm512_mask_cmpneq_epi64_mask,
    _mm512_mask_cmplt_epi64_mask,
    _mm512_mask_cmple_epi64_mask,
    _mm512_mask_cmpgt_epi64_mask,
    _mm512_mask_cmpge_epi64_mask
);

#[inline]
#[target_feature(enable = "avx512f,avx512vl,avx512dq")]
unsafe fn cmp_f64(op: CmpOp, a: __m512i, b: __m512i) -> __mmask8 {
    let (fa, fb) = (_mm512_castsi512_pd(a), _mm512_castsi512_pd(b));
    // Ordered, quiet predicates — NaN compares false everywhere.
    match op {
        CmpOp::Eq => _mm512_cmp_pd_mask::<_CMP_EQ_OQ>(fa, fb),
        CmpOp::Ne => _mm512_cmp_pd_mask::<_CMP_NEQ_OQ>(fa, fb),
        CmpOp::Lt => _mm512_cmp_pd_mask::<_CMP_LT_OS>(fa, fb),
        CmpOp::Le => _mm512_cmp_pd_mask::<_CMP_LE_OS>(fa, fb),
        CmpOp::Gt => _mm512_cmp_pd_mask::<_CMP_GT_OS>(fa, fb),
        CmpOp::Ge => _mm512_cmp_pd_mask::<_CMP_GE_OS>(fa, fb),
    }
}

#[inline]
#[target_feature(enable = "avx512f,avx512vl,avx512dq")]
unsafe fn mask_cmp_f64(k: __mmask8, op: CmpOp, a: __m512i, b: __m512i) -> __mmask8 {
    let (fa, fb) = (_mm512_castsi512_pd(a), _mm512_castsi512_pd(b));
    match op {
        CmpOp::Eq => _mm512_mask_cmp_pd_mask::<_CMP_EQ_OQ>(k, fa, fb),
        CmpOp::Ne => _mm512_mask_cmp_pd_mask::<_CMP_NEQ_OQ>(k, fa, fb),
        CmpOp::Lt => _mm512_mask_cmp_pd_mask::<_CMP_LT_OS>(k, fa, fb),
        CmpOp::Le => _mm512_mask_cmp_pd_mask::<_CMP_LE_OS>(k, fa, fb),
        CmpOp::Gt => _mm512_mask_cmp_pd_mask::<_CMP_GT_OS>(k, fa, fb),
        CmpOp::Ge => _mm512_mask_cmp_pd_mask::<_CMP_GE_OS>(k, fa, fb),
    }
}

macro_rules! w64_kernel {
    ($modname:ident, $elem:ty, $cmp:ident, $mask_cmp:ident) => {
        /// 8-byte fused kernel for one element kind (zmm values, ymm
        /// position lists).
        pub mod $modname {
            use super::*;

            struct State<'a> {
                cols: &'a [&'a [$elem]],
                ops: &'a [CmpOp],
                nsplat: [__m512i; MAX_PREDICATES],
                plists: [__m256i; MAX_PREDICATES],
                counts: [usize; MAX_PREDICATES],
                out: Vec<u32>,
                total: u64,
            }

            #[target_feature(enable = "avx512f,avx512vl,avx512bw,avx512dq,avx2,popcnt")]
            unsafe fn push<const EMIT: bool>(
                st: &mut State<'_>,
                s: usize,
                fresh: __m256i,
                m: usize,
            ) {
                if st.counts[s] + m > LANES {
                    flush::<EMIT>(st, s);
                    st.plists[s] = fresh;
                    st.counts[s] = m;
                } else {
                    let ctl = _mm256_loadu_epi32(MERGE8[st.counts[s]].as_ptr() as *const i32);
                    st.plists[s] = _mm256_permutex2var_epi32(st.plists[s], ctl, fresh);
                    st.counts[s] += m;
                }
                if st.counts[s] == LANES {
                    flush::<EMIT>(st, s);
                }
            }

            #[target_feature(enable = "avx512f,avx512vl,avx512bw,avx512dq,avx2,popcnt")]
            unsafe fn flush<const EMIT: bool>(st: &mut State<'_>, s: usize) {
                let c = st.counts[s];
                if c == 0 {
                    return;
                }
                let plist = st.plists[s];
                st.plists[s] = _mm256_setzero_si256();
                st.counts[s] = 0;

                let km = fts_simd::model::lane_mask(c) as __mmask8;
                let col = st.cols[s + 1];
                // Dword indexes gather qword values.
                let vals = _mm512_mask_i32gather_epi64::<8>(
                    _mm512_setzero_si512(),
                    km,
                    plist,
                    col.as_ptr() as *const i64,
                );
                let k2 = $mask_cmp(km, st.ops[s + 1], vals, st.nsplat[s + 1]);
                let m2 = (k2 as u32).count_ones() as usize;
                if m2 == 0 {
                    return;
                }
                let fresh2 = _mm256_maskz_compress_epi32(k2, plist);
                if s + 2 == st.cols.len() {
                    emit::<EMIT>(st, fresh2, m2);
                } else {
                    push::<EMIT>(st, s + 1, fresh2, m2);
                }
            }

            #[target_feature(enable = "avx512f,avx512vl,avx512bw,avx512dq,avx2,popcnt")]
            unsafe fn emit<const EMIT: bool>(st: &mut State<'_>, fresh: __m256i, m: usize) {
                st.total += m as u64;
                if EMIT {
                    let len = st.out.len();
                    st.out.reserve(LANES);
                    _mm256_storeu_epi32(st.out.as_mut_ptr().add(len) as *mut i32, fresh);
                    st.out.set_len(len + m);
                }
            }

            #[target_feature(enable = "avx512f,avx512vl,avx512bw,avx512dq,avx2,popcnt")]
            unsafe fn kernel<const EMIT: bool>(
                cols: &[&[$elem]],
                ops: &[CmpOp],
                needles: &[$elem],
            ) -> (u64, Vec<u32>) {
                let p = cols.len();
                let rows = cols[0].len();
                let mut st = State {
                    cols,
                    ops,
                    nsplat: std::array::from_fn(|i| {
                        _mm512_set1_epi64(needles.get(i).map_or(0, |n| Elem64::bits(*n)))
                    }),
                    plists: [_mm256_setzero_si256(); MAX_PREDICATES],
                    counts: [0; MAX_PREDICATES],
                    out: Vec::new(),
                    total: 0,
                };
                let col0 = cols[0].as_ptr() as *const i64;
                let op0 = ops[0];
                let needle0 = st.nsplat[0];
                let iota = _mm256_loadu_epi32(IOTA8.as_ptr() as *const i32);

                let full_blocks = rows / LANES;
                for blk in 0..full_blocks {
                    let v = _mm512_loadu_epi64(col0.add(blk * LANES));
                    let k = $cmp(op0, v, needle0);
                    if k == 0 {
                        continue;
                    }
                    let m = (k as u32).count_ones() as usize;
                    let idx = _mm256_add_epi32(iota, _mm256_set1_epi32((blk * LANES) as i32));
                    let fresh = _mm256_maskz_compress_epi32(k, idx);
                    if p == 1 {
                        emit::<EMIT>(&mut st, fresh, m);
                    } else {
                        push::<EMIT>(&mut st, 0, fresh, m);
                    }
                }

                let tail = rows % LANES;
                if tail != 0 {
                    let base = full_blocks * LANES;
                    let kt = fts_simd::model::lane_mask(tail) as __mmask8;
                    let v = _mm512_maskz_loadu_epi64(kt, col0.add(base));
                    let k = $mask_cmp(kt, op0, v, needle0);
                    if k != 0 {
                        let m = (k as u32).count_ones() as usize;
                        let idx = _mm256_add_epi32(iota, _mm256_set1_epi32(base as i32));
                        let fresh = _mm256_maskz_compress_epi32(k, idx);
                        if p == 1 {
                            emit::<EMIT>(&mut st, fresh, m);
                        } else {
                            push::<EMIT>(&mut st, 0, fresh, m);
                        }
                    }
                }

                for s in 0..p.saturating_sub(1) {
                    flush::<EMIT>(&mut st, s);
                }
                (st.total, st.out)
            }

            /// Safe entry point; panics without AVX-512 or on an invalid
            /// chain.
            pub fn fused_scan(preds: &[TypedPred<'_, $elem>], mode: OutputMode) -> ScanOutput {
                assert!(has_avx512(), "AVX-512 not available on this host");
                assert!(
                    preds.len() <= MAX_PREDICATES,
                    "chain too long for one fused kernel"
                );
                let empty = match mode {
                    OutputMode::Count => ScanOutput::Count(0),
                    OutputMode::Positions => ScanOutput::Positions(PosList::new()),
                };
                let Some(first) = preds.first() else {
                    return empty;
                };
                let rows = first.data.len();
                for q in preds {
                    assert_eq!(q.data.len(), rows, "chain columns must have equal length");
                }
                assert!(
                    rows <= i32::MAX as usize,
                    "chunk exceeds 32-bit gather index range"
                );

                let cols: Vec<&[$elem]> = preds.iter().map(|q| q.data).collect();
                let ops: Vec<CmpOp> = preds.iter().map(|q| q.op).collect();
                let needles: Vec<$elem> = preds.iter().map(|q| q.needle).collect();
                // SAFETY: AVX-512 presence asserted; columns validated.
                match mode {
                    OutputMode::Count => {
                        let (total, _) = unsafe { kernel::<false>(&cols, &ops, &needles) };
                        ScanOutput::Count(total)
                    }
                    OutputMode::Positions => {
                        let (_, out) = unsafe { kernel::<true>(&cols, &ops, &needles) };
                        ScanOutput::Positions(PosList::from_vec(out))
                    }
                }
            }
        }
    };
}

w64_kernel!(u64_w512, u64, cmp_u64, mask_cmp_u64);
w64_kernel!(i64_w512, i64, cmp_i64, mask_cmp_i64);
w64_kernel!(f64_w512, f64, cmp_f64, mask_cmp_f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn skip() -> bool {
        if !has_avx512() {
            eprintln!("skipping: no AVX-512 on this host");
            return true;
        }
        false
    }

    #[test]
    fn u64_all_operator_pairs() {
        if skip() {
            return;
        }
        let big = u64::MAX - 7;
        let a: Vec<u64> = (0..600u64)
            .map(|i| if i % 5 == 0 { big } else { i % 13 })
            .collect();
        let b: Vec<u64> = (0..600u64).map(|i| (i * 11) % 7).collect();
        for op0 in CmpOp::ALL {
            for op1 in CmpOp::ALL {
                let preds = [
                    TypedPred::new(&a[..], op0, big),
                    TypedPred::new(&b[..], op1, 3u64),
                ];
                let expected = reference::scan_positions(&preds);
                let got = u64_w512::fused_scan(&preds, OutputMode::Positions);
                assert_eq!(got.positions().unwrap(), &expected, "{op0} {op1}");
                let got = u64_w512::fused_scan(&preds, OutputMode::Count);
                assert_eq!(got.count(), expected.len() as u64);
            }
        }
    }

    #[test]
    fn i64_negative_values() {
        if skip() {
            return;
        }
        let a: Vec<i64> = (0..500).map(|i| (i % 9) - 4).collect();
        let b: Vec<i64> = (0..500).map(|i| i64::MIN + (i % 5)).collect();
        for op in CmpOp::ALL {
            let preds = [
                TypedPred::new(&a[..], op, 0i64),
                TypedPred::new(&b[..], CmpOp::Le, i64::MIN + 2),
            ];
            let expected = reference::scan_positions(&preds);
            let got = i64_w512::fused_scan(&preds, OutputMode::Positions);
            assert_eq!(got.positions().unwrap(), &expected, "{op}");
        }
    }

    #[test]
    fn f64_with_nan() {
        if skip() {
            return;
        }
        let mut a: Vec<f64> = (0..400).map(|i| (i % 7) as f64 * 0.5).collect();
        a[17] = f64::NAN;
        a[350] = f64::NAN;
        let b: Vec<f64> = (0..400).map(|i| (i % 3) as f64 - 1.0).collect();
        for op in CmpOp::ALL {
            let preds = [
                TypedPred::new(&a[..], op, 1.5f64),
                TypedPred::new(&b[..], CmpOp::Lt, 1.0f64),
            ];
            let expected = reference::scan_positions(&preds);
            let got = f64_w512::fused_scan(&preds, OutputMode::Positions);
            assert_eq!(got.positions().unwrap(), &expected, "{op}");
        }
    }

    #[test]
    fn tails_and_chains() {
        if skip() {
            return;
        }
        for rows in [0usize, 1, 7, 8, 9, 15, 16, 17, 100] {
            let cols: Vec<Vec<u64>> = (0..4u64)
                .map(|c| {
                    (0..rows as u64)
                        .map(|i| i.wrapping_mul(c + 3) % 3)
                        .collect()
                })
                .collect();
            for p in 1..=4 {
                let preds: Vec<TypedPred<'_, u64>> =
                    cols[..p].iter().map(|c| TypedPred::eq(&c[..], 0)).collect();
                let expected = reference::scan_positions(&preds);
                let got = u64_w512::fused_scan(&preds, OutputMode::Positions);
                assert_eq!(got.positions().unwrap(), &expected, "rows={rows} P={p}");
            }
        }
    }

    #[test]
    fn extreme_selectivities() {
        if skip() {
            return;
        }
        let rows = 3000usize;
        let all = vec![5u64; rows];
        let none = vec![4u64; rows];
        let half: Vec<u64> = (0..rows as u64).map(|i| 4 + i % 2).collect();
        for (x, y) in [
            (&all, &half),
            (&half, &all),
            (&all, &none),
            (&none, &all),
            (&all, &all),
        ] {
            let preds = [TypedPred::eq(&x[..], 5u64), TypedPred::eq(&y[..], 5u64)];
            let expected = reference::scan_count(&preds);
            let got = u64_w512::fused_scan(&preds, OutputMode::Count);
            assert_eq!(got.count(), expected);
        }
    }
}
