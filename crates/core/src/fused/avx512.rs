//! AVX-512 Fused Table Scan kernels (paper §III, Fig. 3).
//!
//! One kernel per (element kind × register width). All nine use the same
//! engine skeleton as [`crate::fused::scalar`]; the instruction mapping is
//! exactly the paper's:
//!
//! | step | instruction |
//! |------|-------------|
//! | block load            | `vmovdqu32` (`_mm*_loadu_epi32`), masked for the tail |
//! | driver compare        | `vpcmpud`/`vpcmpd`/`vcmpps` → k-mask |
//! | offsets → position list | `vpcompressd` (`_mm*_maskz_compress_epi32`) |
//! | append to list        | `vpermt2d` (`_mm*_permutex2var_epi32`) with a per-length control |
//! | follow-up fetch       | `vpgatherdd` masked (`_mm*_mmask_i32gather_epi32`) |
//! | follow-up compare     | masked `vpcmpud`/… keeping the bitmask in `k` registers |
//!
//! Values are carried in integer registers regardless of element kind —
//! `f32` only reinterprets the lanes at the compare (`vcmpps` on the same
//! bits), so the whole position-list machinery is shared.
//!
//! The safe wrappers panic unless [`fts_simd::has_avx512`] holds; the
//! engine layer ([`crate::engine`]) routes around that.

#![cfg(target_arch = "x86_64")]
#![allow(unsafe_op_in_unsafe_fn)] // one kernel = one contiguous unsafe context

use std::arch::x86_64::*;

use fts_simd::has_avx512;
use fts_storage::{CmpOp, NativeType, PosList};

use crate::fused::{MAX_PREDICATES, MERGE16, MERGE4, MERGE8};
use crate::pred::{OutputMode, ScanOutput, TypedPred};

/// 32-bit element kinds the kernels support: the lane bits plus which
/// compare family interprets them.
pub trait Elem32: NativeType {
    /// The lane's raw bits as `i32` (what `vpbroadcastd` wants).
    fn bits(self) -> i32;
}

impl Elem32 for u32 {
    #[inline(always)]
    fn bits(self) -> i32 {
        self as i32
    }
}

impl Elem32 for i32 {
    #[inline(always)]
    fn bits(self) -> i32 {
        self
    }
}

impl Elem32 for f32 {
    #[inline(always)]
    fn bits(self) -> i32 {
        self.to_bits() as i32
    }
}

static IOTA4: [u32; 4] = [0, 1, 2, 3];
static IOTA8: [u32; 8] = [0, 1, 2, 3, 4, 5, 6, 7];
/// Public iota table reused by the mixed-width kernel.
pub static IOTA16_PUB: [u32; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15];
static IOTA16: [u32; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15];

// --- compare dispatch macros -------------------------------------------
// A `match` over a loop-invariant `CmpOp` compiles to one perfectly
// predicted branch; the JIT backend in `fts-jit` removes even that.

macro_rules! def_int_cmp {
    ($cmp:ident, $mask_cmp:ident, $vec:ty, $mask:ty,
     $eq:ident, $ne:ident, $lt:ident, $le:ident, $gt:ident, $ge:ident,
     $meq:ident, $mne:ident, $mlt:ident, $mle:ident, $mgt:ident, $mge:ident) => {
        #[inline]
        #[target_feature(enable = "avx512f,avx512vl,avx512dq")]
        unsafe fn $cmp(op: CmpOp, a: $vec, b: $vec) -> $mask {
            match op {
                CmpOp::Eq => $eq(a, b),
                CmpOp::Ne => $ne(a, b),
                CmpOp::Lt => $lt(a, b),
                CmpOp::Le => $le(a, b),
                CmpOp::Gt => $gt(a, b),
                CmpOp::Ge => $ge(a, b),
            }
        }
        #[inline]
        #[target_feature(enable = "avx512f,avx512vl,avx512dq")]
        unsafe fn $mask_cmp(k: $mask, op: CmpOp, a: $vec, b: $vec) -> $mask {
            match op {
                CmpOp::Eq => $meq(k, a, b),
                CmpOp::Ne => $mne(k, a, b),
                CmpOp::Lt => $mlt(k, a, b),
                CmpOp::Le => $mle(k, a, b),
                CmpOp::Gt => $mgt(k, a, b),
                CmpOp::Ge => $mge(k, a, b),
            }
        }
    };
}

def_int_cmp!(
    cmp_u32_128,
    mask_cmp_u32_128,
    __m128i,
    __mmask8,
    _mm_cmpeq_epu32_mask,
    _mm_cmpneq_epu32_mask,
    _mm_cmplt_epu32_mask,
    _mm_cmple_epu32_mask,
    _mm_cmpgt_epu32_mask,
    _mm_cmpge_epu32_mask,
    _mm_mask_cmpeq_epu32_mask,
    _mm_mask_cmpneq_epu32_mask,
    _mm_mask_cmplt_epu32_mask,
    _mm_mask_cmple_epu32_mask,
    _mm_mask_cmpgt_epu32_mask,
    _mm_mask_cmpge_epu32_mask
);
def_int_cmp!(
    cmp_u32_256,
    mask_cmp_u32_256,
    __m256i,
    __mmask8,
    _mm256_cmpeq_epu32_mask,
    _mm256_cmpneq_epu32_mask,
    _mm256_cmplt_epu32_mask,
    _mm256_cmple_epu32_mask,
    _mm256_cmpgt_epu32_mask,
    _mm256_cmpge_epu32_mask,
    _mm256_mask_cmpeq_epu32_mask,
    _mm256_mask_cmpneq_epu32_mask,
    _mm256_mask_cmplt_epu32_mask,
    _mm256_mask_cmple_epu32_mask,
    _mm256_mask_cmpgt_epu32_mask,
    _mm256_mask_cmpge_epu32_mask
);
def_int_cmp!(
    cmp_u32_512,
    mask_cmp_u32_512,
    __m512i,
    __mmask16,
    _mm512_cmpeq_epu32_mask,
    _mm512_cmpneq_epu32_mask,
    _mm512_cmplt_epu32_mask,
    _mm512_cmple_epu32_mask,
    _mm512_cmpgt_epu32_mask,
    _mm512_cmpge_epu32_mask,
    _mm512_mask_cmpeq_epu32_mask,
    _mm512_mask_cmpneq_epu32_mask,
    _mm512_mask_cmplt_epu32_mask,
    _mm512_mask_cmple_epu32_mask,
    _mm512_mask_cmpgt_epu32_mask,
    _mm512_mask_cmpge_epu32_mask
);

def_int_cmp!(
    cmp_i32_128,
    mask_cmp_i32_128,
    __m128i,
    __mmask8,
    _mm_cmpeq_epi32_mask,
    _mm_cmpneq_epi32_mask,
    _mm_cmplt_epi32_mask,
    _mm_cmple_epi32_mask,
    _mm_cmpgt_epi32_mask,
    _mm_cmpge_epi32_mask,
    _mm_mask_cmpeq_epi32_mask,
    _mm_mask_cmpneq_epi32_mask,
    _mm_mask_cmplt_epi32_mask,
    _mm_mask_cmple_epi32_mask,
    _mm_mask_cmpgt_epi32_mask,
    _mm_mask_cmpge_epi32_mask
);
def_int_cmp!(
    cmp_i32_256,
    mask_cmp_i32_256,
    __m256i,
    __mmask8,
    _mm256_cmpeq_epi32_mask,
    _mm256_cmpneq_epi32_mask,
    _mm256_cmplt_epi32_mask,
    _mm256_cmple_epi32_mask,
    _mm256_cmpgt_epi32_mask,
    _mm256_cmpge_epi32_mask,
    _mm256_mask_cmpeq_epi32_mask,
    _mm256_mask_cmpneq_epi32_mask,
    _mm256_mask_cmplt_epi32_mask,
    _mm256_mask_cmple_epi32_mask,
    _mm256_mask_cmpgt_epi32_mask,
    _mm256_mask_cmpge_epi32_mask
);
def_int_cmp!(
    cmp_i32_512,
    mask_cmp_i32_512,
    __m512i,
    __mmask16,
    _mm512_cmpeq_epi32_mask,
    _mm512_cmpneq_epi32_mask,
    _mm512_cmplt_epi32_mask,
    _mm512_cmple_epi32_mask,
    _mm512_cmpgt_epi32_mask,
    _mm512_cmpge_epi32_mask,
    _mm512_mask_cmpeq_epi32_mask,
    _mm512_mask_cmpneq_epi32_mask,
    _mm512_mask_cmplt_epi32_mask,
    _mm512_mask_cmple_epi32_mask,
    _mm512_mask_cmpgt_epi32_mask,
    _mm512_mask_cmpge_epi32_mask
);

macro_rules! def_f32_cmp {
    ($cmp:ident, $mask_cmp:ident, $vec:ty, $mask:ty, $cast:ident, $cmpfn:ident, $mask_cmpfn:ident) => {
        #[inline]
        #[target_feature(enable = "avx512f,avx512vl,avx512dq")]
        unsafe fn $cmp(op: CmpOp, a: $vec, b: $vec) -> $mask {
            let (fa, fb) = ($cast(a), $cast(b));
            // Ordered, quiet predicates: NaN lanes compare false for every
            // operator, matching `NativeType::cmp_op`.
            match op {
                CmpOp::Eq => $cmpfn::<_CMP_EQ_OQ>(fa, fb),
                CmpOp::Ne => $cmpfn::<_CMP_NEQ_OQ>(fa, fb),
                CmpOp::Lt => $cmpfn::<_CMP_LT_OS>(fa, fb),
                CmpOp::Le => $cmpfn::<_CMP_LE_OS>(fa, fb),
                CmpOp::Gt => $cmpfn::<_CMP_GT_OS>(fa, fb),
                CmpOp::Ge => $cmpfn::<_CMP_GE_OS>(fa, fb),
            }
        }
        #[inline]
        #[target_feature(enable = "avx512f,avx512vl,avx512dq")]
        unsafe fn $mask_cmp(k: $mask, op: CmpOp, a: $vec, b: $vec) -> $mask {
            let (fa, fb) = ($cast(a), $cast(b));
            match op {
                CmpOp::Eq => $mask_cmpfn::<_CMP_EQ_OQ>(k, fa, fb),
                CmpOp::Ne => $mask_cmpfn::<_CMP_NEQ_OQ>(k, fa, fb),
                CmpOp::Lt => $mask_cmpfn::<_CMP_LT_OS>(k, fa, fb),
                CmpOp::Le => $mask_cmpfn::<_CMP_LE_OS>(k, fa, fb),
                CmpOp::Gt => $mask_cmpfn::<_CMP_GT_OS>(k, fa, fb),
                CmpOp::Ge => $mask_cmpfn::<_CMP_GE_OS>(k, fa, fb),
            }
        }
    };
}

def_f32_cmp!(
    cmp_f32_128,
    mask_cmp_f32_128,
    __m128i,
    __mmask8,
    _mm_castsi128_ps,
    _mm_cmp_ps_mask,
    _mm_mask_cmp_ps_mask
);
def_f32_cmp!(
    cmp_f32_256,
    mask_cmp_f32_256,
    __m256i,
    __mmask8,
    _mm256_castsi256_ps,
    _mm256_cmp_ps_mask,
    _mm256_mask_cmp_ps_mask
);
def_f32_cmp!(
    cmp_f32_512,
    mask_cmp_f32_512,
    __m512i,
    __mmask16,
    _mm512_castsi512_ps,
    _mm512_cmp_ps_mask,
    _mm512_mask_cmp_ps_mask
);

// --- the kernel skeleton ------------------------------------------------

macro_rules! avx512_kernel {
    ($modname:ident, $elem:ty, $lanes:expr, $vec:ty, $mask:ty,
     $loadu:ident, $maskz_loadu:ident, $storeu:ident, $set1:ident, $setzero:ident,
     $maskz_compress:ident, $permutex2var:ident, $add:ident,
     $iota:ident, $merge:ident,
     $cmp:ident, $mask_cmp:ident,
     |$gsrc:ident, $gk:ident, $gidx:ident, $gbase:ident| $gather:expr) => {
        /// One width × element-kind instantiation of the fused kernel.
        pub mod $modname {
            use super::*;

            /// Lanes per register.
            pub const LANES: usize = $lanes;

            struct State<'a> {
                cols: &'a [&'a [$elem]],
                ops: &'a [CmpOp],
                nsplat: [$vec; MAX_PREDICATES],
                plists: [$vec; MAX_PREDICATES],
                counts: [usize; MAX_PREDICATES],
                out: Vec<u32>,
                total: u64,
            }

            /// Append `fresh[..m]` (left-aligned, zero-padded) to stage `s`.
            #[target_feature(enable = "avx512f,avx512vl,avx512bw,avx512dq,avx2,popcnt")]
            unsafe fn push<const EMIT: bool>(st: &mut State<'_>, s: usize, fresh: $vec, m: usize) {
                if st.counts[s] + m > LANES {
                    // Process the incomplete list first, then start a new
                    // list with the batch (paper §III).
                    flush::<EMIT>(st, s);
                    st.plists[s] = fresh;
                    st.counts[s] = m;
                } else {
                    let ctl = $loadu($merge[st.counts[s]].as_ptr() as *const i32);
                    st.plists[s] = $permutex2var(st.plists[s], ctl, fresh);
                    st.counts[s] += m;
                }
                if st.counts[s] == LANES {
                    flush::<EMIT>(st, s);
                }
            }

            /// Gather + masked compare the pending positions of stage `s`,
            /// forwarding survivors to stage `s + 1` (or the output).
            #[target_feature(enable = "avx512f,avx512vl,avx512bw,avx512dq,avx2,popcnt")]
            unsafe fn flush<const EMIT: bool>(st: &mut State<'_>, s: usize) {
                let c = st.counts[s];
                if c == 0 {
                    return;
                }
                let plist = st.plists[s];
                st.plists[s] = $setzero();
                st.counts[s] = 0;

                let km = (fts_simd::model::lane_mask(c) as $mask);
                let col = st.cols[s + 1];
                let vals = {
                    let $gsrc = $setzero();
                    let $gk = km;
                    let $gidx = plist;
                    let $gbase = col.as_ptr() as *const i32;
                    $gather
                };
                let k2 = $mask_cmp(km, st.ops[s + 1], vals, st.nsplat[s + 1]);
                let m2 = (k2 as u32).count_ones() as usize;
                if m2 == 0 {
                    return;
                }
                let fresh2 = $maskz_compress(k2, plist);
                if s + 2 == st.cols.len() {
                    emit::<EMIT>(st, fresh2, m2);
                } else {
                    push::<EMIT>(st, s + 1, fresh2, m2);
                }
            }

            #[target_feature(enable = "avx512f,avx512vl,avx512bw,avx512dq,avx2,popcnt")]
            unsafe fn emit<const EMIT: bool>(st: &mut State<'_>, fresh: $vec, m: usize) {
                st.total += m as u64;
                if EMIT {
                    let len = st.out.len();
                    st.out.reserve(LANES);
                    $storeu(st.out.as_mut_ptr().add(len) as *mut i32, fresh);
                    st.out.set_len(len + m);
                }
            }

            #[target_feature(enable = "avx512f,avx512vl,avx512bw,avx512dq,avx2,popcnt")]
            unsafe fn kernel<const EMIT: bool>(
                cols: &[&[$elem]],
                ops: &[CmpOp],
                needles: &[$elem],
            ) -> (u64, Vec<u32>) {
                let p = cols.len();
                let rows = cols[0].len();
                let mut st = State {
                    cols,
                    ops,
                    nsplat: std::array::from_fn(|i| {
                        $set1(needles.get(i).map_or(0, |n| Elem32::bits(*n)))
                    }),
                    plists: [$setzero(); MAX_PREDICATES],
                    counts: [0; MAX_PREDICATES],
                    out: Vec::new(),
                    total: 0,
                };
                let col0 = cols[0].as_ptr() as *const i32;
                let op0 = ops[0];
                let needle0 = st.nsplat[0];
                let iota = $loadu($iota.as_ptr() as *const i32);

                let full_blocks = rows / LANES;
                for blk in 0..full_blocks {
                    let v = $loadu(col0.add(blk * LANES));
                    let k = $cmp(op0, v, needle0);
                    if k == 0 {
                        continue;
                    }
                    let m = (k as u32).count_ones() as usize;
                    let idx = $add(iota, $set1((blk * LANES) as i32));
                    let fresh = $maskz_compress(k, idx);
                    if p == 1 {
                        emit::<EMIT>(&mut st, fresh, m);
                    } else {
                        push::<EMIT>(&mut st, 0, fresh, m);
                    }
                }

                let tail = rows % LANES;
                if tail != 0 {
                    let base = full_blocks * LANES;
                    let kt = fts_simd::model::lane_mask(tail) as $mask;
                    let v = $maskz_loadu(kt, col0.add(base));
                    let k = $mask_cmp(kt, op0, v, needle0);
                    if k != 0 {
                        let m = (k as u32).count_ones() as usize;
                        let idx = $add(iota, $set1(base as i32));
                        let fresh = $maskz_compress(k, idx);
                        if p == 1 {
                            emit::<EMIT>(&mut st, fresh, m);
                        } else {
                            push::<EMIT>(&mut st, 0, fresh, m);
                        }
                    }
                }

                // Drain partial lists in ascending stage order.
                for s in 0..p.saturating_sub(1) {
                    flush::<EMIT>(&mut st, s);
                }
                (st.total, st.out)
            }

            /// Safe entry point. Panics without AVX-512 or on an invalid
            /// chain (ragged columns, > [`MAX_PREDICATES`] predicates).
            pub fn fused_scan(preds: &[TypedPred<'_, $elem>], mode: OutputMode) -> ScanOutput {
                assert!(has_avx512(), "AVX-512 not available on this host");
                assert!(
                    preds.len() <= MAX_PREDICATES,
                    "chain too long for one fused kernel"
                );
                let empty = match mode {
                    OutputMode::Count => ScanOutput::Count(0),
                    OutputMode::Positions => ScanOutput::Positions(PosList::new()),
                };
                let Some(first) = preds.first() else {
                    return empty;
                };
                let rows = first.data.len();
                for p in preds {
                    assert_eq!(p.data.len(), rows, "chain columns must have equal length");
                }
                assert!(
                    rows <= i32::MAX as usize,
                    "chunk exceeds 32-bit gather index range"
                );

                let cols: Vec<&[$elem]> = preds.iter().map(|p| p.data).collect();
                let ops: Vec<CmpOp> = preds.iter().map(|p| p.op).collect();
                let needles: Vec<$elem> = preds.iter().map(|p| p.needle).collect();
                // SAFETY: AVX-512 presence asserted; columns validated.
                match mode {
                    OutputMode::Count => {
                        let (total, _) = unsafe { kernel::<false>(&cols, &ops, &needles) };
                        ScanOutput::Count(total)
                    }
                    OutputMode::Positions => {
                        let (_, out) = unsafe { kernel::<true>(&cols, &ops, &needles) };
                        ScanOutput::Positions(PosList::from_vec(out))
                    }
                }
            }
        }
    };
}

// u32 kernels — the paper's 4-byte integers.
avx512_kernel!(
    u32_w128,
    u32,
    4,
    __m128i,
    __mmask8,
    _mm_loadu_epi32,
    _mm_maskz_loadu_epi32,
    _mm_storeu_epi32,
    _mm_set1_epi32,
    _mm_setzero_si128,
    _mm_maskz_compress_epi32,
    _mm_permutex2var_epi32,
    _mm_add_epi32,
    IOTA4,
    MERGE4,
    cmp_u32_128,
    mask_cmp_u32_128,
    |src, k, idx, base| _mm_mmask_i32gather_epi32::<4>(src, k, idx, base)
);
avx512_kernel!(
    u32_w256,
    u32,
    8,
    __m256i,
    __mmask8,
    _mm256_loadu_epi32,
    _mm256_maskz_loadu_epi32,
    _mm256_storeu_epi32,
    _mm256_set1_epi32,
    _mm256_setzero_si256,
    _mm256_maskz_compress_epi32,
    _mm256_permutex2var_epi32,
    _mm256_add_epi32,
    IOTA8,
    MERGE8,
    cmp_u32_256,
    mask_cmp_u32_256,
    |src, k, idx, base| _mm256_mmask_i32gather_epi32::<4>(src, k, idx, base)
);
avx512_kernel!(
    u32_w512,
    u32,
    16,
    __m512i,
    __mmask16,
    _mm512_loadu_epi32,
    _mm512_maskz_loadu_epi32,
    _mm512_storeu_epi32,
    _mm512_set1_epi32,
    _mm512_setzero_si512,
    _mm512_maskz_compress_epi32,
    _mm512_permutex2var_epi32,
    _mm512_add_epi32,
    IOTA16,
    MERGE16,
    cmp_u32_512,
    mask_cmp_u32_512,
    |src, k, idx, base| _mm512_mask_i32gather_epi32::<4>(src, k, idx, base)
);

// i32 kernels — signed compares.
avx512_kernel!(
    i32_w128,
    i32,
    4,
    __m128i,
    __mmask8,
    _mm_loadu_epi32,
    _mm_maskz_loadu_epi32,
    _mm_storeu_epi32,
    _mm_set1_epi32,
    _mm_setzero_si128,
    _mm_maskz_compress_epi32,
    _mm_permutex2var_epi32,
    _mm_add_epi32,
    IOTA4,
    MERGE4,
    cmp_i32_128,
    mask_cmp_i32_128,
    |src, k, idx, base| _mm_mmask_i32gather_epi32::<4>(src, k, idx, base)
);
avx512_kernel!(
    i32_w256,
    i32,
    8,
    __m256i,
    __mmask8,
    _mm256_loadu_epi32,
    _mm256_maskz_loadu_epi32,
    _mm256_storeu_epi32,
    _mm256_set1_epi32,
    _mm256_setzero_si256,
    _mm256_maskz_compress_epi32,
    _mm256_permutex2var_epi32,
    _mm256_add_epi32,
    IOTA8,
    MERGE8,
    cmp_i32_256,
    mask_cmp_i32_256,
    |src, k, idx, base| _mm256_mmask_i32gather_epi32::<4>(src, k, idx, base)
);
avx512_kernel!(
    i32_w512,
    i32,
    16,
    __m512i,
    __mmask16,
    _mm512_loadu_epi32,
    _mm512_maskz_loadu_epi32,
    _mm512_storeu_epi32,
    _mm512_set1_epi32,
    _mm512_setzero_si512,
    _mm512_maskz_compress_epi32,
    _mm512_permutex2var_epi32,
    _mm512_add_epi32,
    IOTA16,
    MERGE16,
    cmp_i32_512,
    mask_cmp_i32_512,
    |src, k, idx, base| _mm512_mask_i32gather_epi32::<4>(src, k, idx, base)
);

// f32 kernels — float compares on the same integer plumbing.
avx512_kernel!(
    f32_w128,
    f32,
    4,
    __m128i,
    __mmask8,
    _mm_loadu_epi32,
    _mm_maskz_loadu_epi32,
    _mm_storeu_epi32,
    _mm_set1_epi32,
    _mm_setzero_si128,
    _mm_maskz_compress_epi32,
    _mm_permutex2var_epi32,
    _mm_add_epi32,
    IOTA4,
    MERGE4,
    cmp_f32_128,
    mask_cmp_f32_128,
    |src, k, idx, base| _mm_mmask_i32gather_epi32::<4>(src, k, idx, base)
);
avx512_kernel!(
    f32_w256,
    f32,
    8,
    __m256i,
    __mmask8,
    _mm256_loadu_epi32,
    _mm256_maskz_loadu_epi32,
    _mm256_storeu_epi32,
    _mm256_set1_epi32,
    _mm256_setzero_si256,
    _mm256_maskz_compress_epi32,
    _mm256_permutex2var_epi32,
    _mm256_add_epi32,
    IOTA8,
    MERGE8,
    cmp_f32_256,
    mask_cmp_f32_256,
    |src, k, idx, base| _mm256_mmask_i32gather_epi32::<4>(src, k, idx, base)
);
avx512_kernel!(
    f32_w512,
    f32,
    16,
    __m512i,
    __mmask16,
    _mm512_loadu_epi32,
    _mm512_maskz_loadu_epi32,
    _mm512_storeu_epi32,
    _mm512_set1_epi32,
    _mm512_setzero_si512,
    _mm512_maskz_compress_epi32,
    _mm512_permutex2var_epi32,
    _mm512_add_epi32,
    IOTA16,
    MERGE16,
    cmp_f32_512,
    mask_cmp_f32_512,
    |src, k, idx, base| _mm512_mask_i32gather_epi32::<4>(src, k, idx, base)
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn skip() -> bool {
        if !has_avx512() {
            eprintln!("skipping: no AVX-512 on this host");
            return true;
        }
        false
    }

    fn check_u32(preds: &[TypedPred<'_, u32>]) {
        let expected = reference::scan_positions(preds);
        for (name, out) in [
            ("w128", u32_w128::fused_scan(preds, OutputMode::Positions)),
            ("w256", u32_w256::fused_scan(preds, OutputMode::Positions)),
            ("w512", u32_w512::fused_scan(preds, OutputMode::Positions)),
        ] {
            assert_eq!(out.positions().unwrap(), &expected, "{name} positions");
        }
        for (name, out) in [
            ("w128", u32_w128::fused_scan(preds, OutputMode::Count)),
            ("w256", u32_w256::fused_scan(preds, OutputMode::Count)),
            ("w512", u32_w512::fused_scan(preds, OutputMode::Count)),
        ] {
            assert_eq!(out.count(), expected.len() as u64, "{name} count");
        }
    }

    #[test]
    fn figure3_worked_example() {
        if skip() {
            return;
        }
        let a = [2u32, 5, 4, 5, 6, 1, 5, 7, 6, 8, 5, 3, 5, 9, 9, 5];
        let b = [5u32, 2, 3, 1, 1, 3, 6, 0, 8, 7, 3, 3, 2, 9, 3, 2];
        let preds = [TypedPred::eq(&a[..], 5), TypedPred::eq(&b[..], 2)];
        let out = u32_w128::fused_scan(&preds, OutputMode::Positions);
        assert_eq!(out.positions().unwrap().as_slice(), &[1, 12, 15]);
        check_u32(&preds);
    }

    #[test]
    fn all_operator_pairs() {
        if skip() {
            return;
        }
        let a: Vec<u32> = (0..400).map(|i| i % 13).collect();
        let b: Vec<u32> = (0..400).map(|i| (i * 11) % 7).collect();
        for op0 in CmpOp::ALL {
            for op1 in CmpOp::ALL {
                let preds = [
                    TypedPred::new(&a[..], op0, 6u32),
                    TypedPred::new(&b[..], op1, 3u32),
                ];
                check_u32(&preds);
            }
        }
    }

    #[test]
    fn chains_one_to_five() {
        if skip() {
            return;
        }
        let cols: Vec<Vec<u32>> = (0..5u32)
            .map(|c| (0..900u32).map(|i| i.wrapping_mul(c + 7) % 3).collect())
            .collect();
        for p in 1..=5 {
            let preds: Vec<TypedPred<'_, u32>> =
                cols[..p].iter().map(|c| TypedPred::eq(&c[..], 1)).collect();
            check_u32(&preds);
        }
    }

    #[test]
    fn tails_and_tiny_inputs() {
        if skip() {
            return;
        }
        for rows in [
            0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65,
        ] {
            let a: Vec<u32> = (0..rows as u32).map(|i| i % 3).collect();
            let b: Vec<u32> = (0..rows as u32).map(|i| i % 2).collect();
            let preds = [TypedPred::eq(&a[..], 0), TypedPred::eq(&b[..], 1)];
            check_u32(&preds);
        }
    }

    #[test]
    fn extreme_selectivities() {
        if skip() {
            return;
        }
        let rows = 2000usize;
        let all: Vec<u32> = vec![5; rows];
        let none: Vec<u32> = vec![4; rows];
        let half: Vec<u32> = (0..rows as u32).map(|i| 4 + i % 2).collect();
        for (a, b) in [
            (&all, &half),
            (&half, &all),
            (&all, &none),
            (&none, &all),
            (&all, &all),
        ] {
            let preds = [TypedPred::eq(&a[..], 5u32), TypedPred::eq(&b[..], 5u32)];
            check_u32(&preds);
        }
    }

    #[test]
    fn signed_kernel_negative_values() {
        if skip() {
            return;
        }
        let a: Vec<i32> = (0..500).map(|i| (i % 9) - 4).collect();
        let b: Vec<i32> = (0..500).map(|i| (i % 5) - 2).collect();
        for op in CmpOp::ALL {
            let preds = [
                TypedPred::new(&a[..], op, 0i32),
                TypedPred::new(&b[..], CmpOp::Ge, -1i32),
            ];
            let expected = reference::scan_positions(&preds);
            for out in [
                i32_w128::fused_scan(&preds, OutputMode::Positions),
                i32_w256::fused_scan(&preds, OutputMode::Positions),
                i32_w512::fused_scan(&preds, OutputMode::Positions),
            ] {
                assert_eq!(out.positions().unwrap(), &expected, "{op}");
            }
        }
    }

    #[test]
    fn float_kernel_with_nan() {
        if skip() {
            return;
        }
        let mut a: Vec<f32> = (0..300).map(|i| (i % 7) as f32).collect();
        a[13] = f32::NAN;
        a[250] = f32::NAN;
        let b: Vec<f32> = (0..300).map(|i| (i % 3) as f32 - 1.0).collect();
        for op in CmpOp::ALL {
            let preds = [
                TypedPred::new(&a[..], op, 3.0f32),
                TypedPred::new(&b[..], CmpOp::Lt, 1.0f32),
            ];
            let expected = reference::scan_positions(&preds);
            for out in [
                f32_w128::fused_scan(&preds, OutputMode::Positions),
                f32_w256::fused_scan(&preds, OutputMode::Positions),
                f32_w512::fused_scan(&preds, OutputMode::Positions),
            ] {
                assert_eq!(out.positions().unwrap(), &expected, "{op}");
            }
        }
    }
}
