//! Morsel-parallel execution of the fused scan.
//!
//! Paper footnote 1: the column-major table "can, however, be horizontally
//! partitioned into chunks or morsels". This module exploits that: the row
//! range is split into fixed-size morsels, worker loops pull morsels from
//! an atomic cursor (classic morsel-driven parallelism), each worker runs
//! the single-threaded fused kernel on its sub-slices, and per-morsel
//! outputs are stitched back together in row order.
//!
//! Worker loops run on the process-wide sharded [`ScanPool`] — persistent
//! per-core workers shared by every concurrent scan — instead of spawning
//! fresh OS threads per call; the calling thread participates too, so a
//! scan progresses even when the pool is saturated by other queries.
//!
//! Failures never tear down the process: a worker that returns an engine
//! error — or panics — surfaces as an [`EngineError`] from the stitcher,
//! with the first failing morsel reported.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use fts_storage::PosList;

use crate::engine::{EngineError, ScanElem, ScanImpl};
use crate::pred::{OutputMode, ScanOutput, TypedPred};
use crate::sched::ScanPool;
use crate::telemetry::{ScanTelemetry, TelemetryLevel};

/// Default morsel size: large enough to amortize dispatch, small enough to
/// balance (64 K rows ≈ 256 KiB of u32 per column, L2-resident).
pub const DEFAULT_MORSEL_ROWS: usize = 1 << 16;

/// Run `imp` over the chain with `threads` workers on `morsel_rows`-row
/// morsels. Produces exactly the single-threaded result (positions stay
/// ascending).
///
/// ```
/// use fts_core::{best_fused_impl, run_scan_parallel, OutputMode, TypedPred};
///
/// let a: Vec<u32> = (0..100_000).map(|i| i % 100).collect();
/// let preds = [TypedPred::eq(&a[..], 42)];
/// let out = run_scan_parallel(best_fused_impl::<u32>(), &preds, OutputMode::Count, 4, 1 << 14)
///     .unwrap();
/// assert_eq!(out.count(), 1000);
/// ```
pub fn run_scan_parallel<T: ScanElem>(
    imp: ScanImpl,
    preds: &[TypedPred<'_, T>],
    mode: OutputMode,
    threads: usize,
    morsel_rows: usize,
) -> Result<ScanOutput, EngineError> {
    run_scan_parallel_telemetered(imp, preds, mode, threads, morsel_rows, TelemetryLevel::Off)
        .map(|(out, _)| out)
}

/// [`run_scan_parallel`] with per-morsel telemetry aggregation.
///
/// At [`TelemetryLevel::Off`] no telemetry is collected (the returned
/// telemetry is empty) and the scan path is identical to
/// [`run_scan_parallel`]. Otherwise each worker collects a
/// [`ScanTelemetry`] for its morsels; the stitcher merges them (counter
/// sums, `morsels` incremented per merge) and stamps the overall
/// wall-clock time of the parallel region.
pub fn run_scan_parallel_telemetered<T: ScanElem>(
    imp: ScanImpl,
    preds: &[TypedPred<'_, T>],
    mode: OutputMode,
    threads: usize,
    morsel_rows: usize,
    level: TelemetryLevel,
) -> Result<(ScanOutput, ScanTelemetry), EngineError> {
    assert!(threads >= 1, "need at least one worker");
    assert!(morsel_rows >= 1, "morsels must be non-empty");
    let run_single =
        |preds: &[TypedPred<'_, T>]| crate::engine::run_scan_telemetered(imp, preds, mode, level);
    let Some(first) = preds.first() else {
        return run_single(preds);
    };
    let rows = first.data.len();
    let morsels = rows.div_ceil(morsel_rows).max(1);
    if threads == 1 || morsels == 1 {
        return run_single(preds);
    }

    let started = std::time::Instant::now();
    let cursor = AtomicUsize::new(0);
    type MorselResult = Result<(ScanOutput, ScanTelemetry), EngineError>;
    let results: Vec<once_slot::Slot<MorselResult>> =
        (0..morsels).map(|_| once_slot::Slot::new()).collect();

    ScanPool::global().scope_run(threads.min(morsels), |_| loop {
        let m = cursor.fetch_add(1, Ordering::Relaxed);
        if m >= morsels {
            break;
        }
        // A panicking morsel must not take down a pool worker: catch it
        // and report it as an engine error for this morsel.
        let result = catch_unwind(AssertUnwindSafe(|| {
            let base = m * morsel_rows;
            let end = (base + morsel_rows).min(rows);
            let sub: Vec<TypedPred<'_, T>> = preds
                .iter()
                .map(|p| TypedPred::new(&p.data[base..end], p.op, p.needle))
                .collect();
            crate::engine::run_scan_telemetered(imp, &sub, mode, level)
        }))
        .unwrap_or_else(|panic| {
            Err(EngineError::WorkerPanicked {
                morsel: m,
                message: panic_text(&panic),
            })
        });
        results[m].set(result);
    });

    // Stitch morsel outputs in order, rebasing positions.
    let mut total = 0u64;
    let mut positions = PosList::new();
    let mut telemetry: Option<ScanTelemetry> = None;
    for (m, slot) in results.iter().enumerate() {
        let (out, morsel_telemetry) = slot
            .take()
            .ok_or(EngineError::MorselMissing { morsel: m })??;
        match out {
            ScanOutput::Count(n) => total += n,
            ScanOutput::Positions(pl) => {
                let base = (m * morsel_rows) as u32;
                total += pl.len() as u64;
                for p in &pl {
                    positions.push(base + p);
                }
            }
        }
        match &mut telemetry {
            None => telemetry = Some(morsel_telemetry),
            Some(t) => t.merge(&morsel_telemetry),
        }
    }
    let mut telemetry = telemetry.unwrap_or_else(|| ScanTelemetry::disabled(imp.name()));
    if level != TelemetryLevel::Off {
        // The parallel region's wall clock, not the sum of worker times.
        telemetry.wall = started.elapsed();
        telemetry.threads = threads.min(morsels);
    }
    let out = match mode {
        OutputMode::Count => ScanOutput::Count(total),
        OutputMode::Positions => ScanOutput::Positions(positions),
    };
    Ok((out, telemetry))
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Tiny once-settable cell so workers can publish results without locks
/// (each slot is written by exactly one worker, then read after the
/// pool's completion barrier).
mod once_slot {
    use std::cell::UnsafeCell;
    use std::sync::atomic::{AtomicBool, Ordering};

    pub struct Slot<T> {
        set: AtomicBool,
        value: UnsafeCell<Option<T>>,
    }

    // SAFETY: one writer per slot (distinct morsel index per worker pull),
    // reads happen only after every worker loop finished (the pool's
    // completion barrier).
    unsafe impl<T: Send> Sync for Slot<T> {}

    impl<T> Slot<T> {
        pub fn new() -> Slot<T> {
            Slot {
                set: AtomicBool::new(false),
                value: UnsafeCell::new(None),
            }
        }

        pub fn set(&self, v: T) {
            // SAFETY: exactly one worker owns this morsel index.
            unsafe { *self.value.get() = Some(v) };
            self.set.store(true, Ordering::Release);
        }

        pub fn take(&self) -> Option<T> {
            if !self.set.load(Ordering::Acquire) {
                return None;
            }
            // SAFETY: all writers finished before take() is called.
            unsafe { (*self.value.get()).take() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RegWidth;
    use crate::reference;
    use fts_storage::CmpOp;

    fn workload(rows: usize) -> (Vec<u32>, Vec<u32>) {
        (
            (0..rows as u32).map(|i| i % 10).collect(),
            (0..rows as u32).map(|i| i.wrapping_mul(7) % 4).collect(),
        )
    }

    #[test]
    fn parallel_equals_sequential() {
        let (a, b) = workload(300_000);
        let preds = [
            TypedPred::new(&a[..], CmpOp::Eq, 5u32),
            TypedPred::new(&b[..], CmpOp::Ne, 2u32),
        ];
        let expected = reference::scan_positions(&preds);
        let imp = crate::engine::best_fused_impl::<u32>();
        for threads in [1, 2, 4, 7] {
            for morsel in [1 << 10, 1 << 16, 999] {
                let got =
                    run_scan_parallel(imp, &preds, OutputMode::Positions, threads, morsel).unwrap();
                assert_eq!(
                    got.positions().unwrap(),
                    &expected,
                    "threads={threads} morsel={morsel}"
                );
                let got =
                    run_scan_parallel(imp, &preds, OutputMode::Count, threads, morsel).unwrap();
                assert_eq!(got.count(), expected.len() as u64);
            }
        }
    }

    #[test]
    fn tiny_and_empty_inputs() {
        let (a, b) = workload(3);
        let preds = [
            TypedPred::new(&a[..], CmpOp::Lt, 9u32),
            TypedPred::new(&b[..], CmpOp::Le, 3u32),
        ];
        let expected = reference::scan_count(&preds);
        let got = run_scan_parallel(
            ScanImpl::FusedScalar(RegWidth::W128),
            &preds,
            OutputMode::Count,
            4,
            DEFAULT_MORSEL_ROWS,
        )
        .unwrap();
        assert_eq!(got.count(), expected);

        let empty: Vec<TypedPred<'_, u32>> = vec![];
        let got = run_scan_parallel(
            ScanImpl::SisdBranching,
            &empty,
            OutputMode::Count,
            4,
            DEFAULT_MORSEL_ROWS,
        )
        .unwrap();
        assert_eq!(got.count(), 0);
    }

    #[test]
    fn errors_propagate_from_workers() {
        let a = [1u16, 2, 3, 4];
        let preds = [TypedPred::eq(&a[..], 2u16)];
        if ScanImpl::FusedAvx2.available() {
            let err = run_scan_parallel(ScanImpl::FusedAvx2, &preds, OutputMode::Count, 2, 2)
                .unwrap_err();
            assert!(matches!(err, EngineError::TypeUnsupported { .. }));
        }
    }

    #[test]
    fn many_threads_on_few_morsels() {
        let (a, b) = workload(5000);
        let preds = [
            TypedPred::new(&a[..], CmpOp::Eq, 5u32),
            TypedPred::new(&b[..], CmpOp::Eq, 1u32),
        ];
        let expected = reference::scan_count(&preds);
        let got = run_scan_parallel(
            crate::engine::best_fused_impl::<u32>(),
            &preds,
            OutputMode::Count,
            64,
            500,
        )
        .unwrap();
        assert_eq!(got.count(), expected);
    }

    #[test]
    fn parallel_telemetry_invariants() {
        let rows = 100_000usize;
        let (a, b) = workload(rows);
        let preds = [
            TypedPred::new(&a[..], CmpOp::Eq, 5u32),
            TypedPred::new(&b[..], CmpOp::Ne, 2u32),
        ];
        let imp = crate::engine::best_fused_impl::<u32>();
        let morsel_rows = 1 << 14;
        let (out, t) = run_scan_parallel_telemetered(
            imp,
            &preds,
            OutputMode::Count,
            4,
            morsel_rows,
            TelemetryLevel::Full,
        )
        .unwrap();
        assert!(t.enabled);
        let morsels = rows.div_ceil(morsel_rows) as u64;
        assert_eq!(t.morsels, morsels);
        assert_eq!(t.rows, rows as u64, "per-morsel rows sum to the total");
        // Sum of per-morsel block counts equals the aggregate: each morsel
        // contributes ceil(morsel_rows / lanes) blocks.
        let lanes = t.lanes as u64;
        let full = (morsels - 1) * (morsel_rows as u64).div_ceil(lanes);
        let tail = (rows as u64 - (morsels - 1) * morsel_rows as u64).div_ceil(lanes);
        assert_eq!(t.blocks, full + tail, "block counts sum across morsels");
        assert_eq!(*t.pred_survivors.last().unwrap(), out.count());
        assert!(
            t.selectivities().iter().all(|s| (0.0..=1.0).contains(s)),
            "{t:?}"
        );
        assert!(t.threads >= 1 && t.threads <= 4);
        assert!(t.wall > std::time::Duration::ZERO);

        // Telemetry agrees with a sequential full-collection run.
        let (_, seq) = crate::engine::run_scan_telemetered(
            imp,
            &preds,
            OutputMode::Count,
            TelemetryLevel::Full,
        )
        .unwrap();
        assert_eq!(t.pred_survivors, seq.pred_survivors);

        // Disabled telemetry changes nothing about the scan result.
        let (off_out, off_t) = run_scan_parallel_telemetered(
            imp,
            &preds,
            OutputMode::Count,
            4,
            morsel_rows,
            TelemetryLevel::Off,
        )
        .unwrap();
        assert_eq!(off_out.count(), out.count());
        assert!(!off_t.enabled);
    }

    #[test]
    fn worker_panic_becomes_engine_error() {
        // Ragged chain: morsel slicing panics for predicates whose column
        // is shorter than the driver's. The old stitcher tore down the
        // process here; now it must surface an EngineError.
        let a: Vec<u32> = (0..10_000).map(|i| i % 5).collect();
        let b: Vec<u32> = (0..100).collect();
        let preds = [TypedPred::eq(&a[..], 1u32), TypedPred::eq(&b[..], 1u32)];
        let err = run_scan_parallel(
            crate::engine::best_fused_impl::<u32>(),
            &preds,
            OutputMode::Count,
            4,
            1000,
        )
        .unwrap_err();
        assert!(
            matches!(err, EngineError::WorkerPanicked { .. }),
            "expected WorkerPanicked, got {err:?}"
        );
    }
}
