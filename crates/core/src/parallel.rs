//! Morsel-parallel execution of the fused scan.
//!
//! Paper footnote 1: the column-major table "can, however, be horizontally
//! partitioned into chunks or morsels". This module exploits that: the row
//! range is split into fixed-size morsels, a crossbeam-scoped worker pool
//! pulls morsels from an atomic cursor (classic morsel-driven parallelism),
//! each worker runs the single-threaded fused kernel on its sub-slices,
//! and per-morsel outputs are stitched back together in row order.

use std::sync::atomic::{AtomicUsize, Ordering};

use fts_storage::PosList;

use crate::engine::{run_scan, EngineError, ScanElem, ScanImpl};
use crate::pred::{OutputMode, ScanOutput, TypedPred};

/// Default morsel size: large enough to amortize dispatch, small enough to
/// balance (64 K rows ≈ 256 KiB of u32 per column, L2-resident).
pub const DEFAULT_MORSEL_ROWS: usize = 1 << 16;

/// Run `imp` over the chain with `threads` workers on `morsel_rows`-row
/// morsels. Produces exactly the single-threaded result (positions stay
/// ascending).
///
/// ```
/// use fts_core::{best_fused_impl, run_scan_parallel, OutputMode, TypedPred};
///
/// let a: Vec<u32> = (0..100_000).map(|i| i % 100).collect();
/// let preds = [TypedPred::eq(&a[..], 42)];
/// let out = run_scan_parallel(best_fused_impl::<u32>(), &preds, OutputMode::Count, 4, 1 << 14)
///     .unwrap();
/// assert_eq!(out.count(), 1000);
/// ```
pub fn run_scan_parallel<T: ScanElem>(
    imp: ScanImpl,
    preds: &[TypedPred<'_, T>],
    mode: OutputMode,
    threads: usize,
    morsel_rows: usize,
) -> Result<ScanOutput, EngineError> {
    assert!(threads >= 1, "need at least one worker");
    assert!(morsel_rows >= 1, "morsels must be non-empty");
    let Some(first) = preds.first() else {
        return run_scan(imp, preds, mode);
    };
    let rows = first.data.len();
    let morsels = rows.div_ceil(morsel_rows).max(1);
    if threads == 1 || morsels == 1 {
        return run_scan(imp, preds, mode);
    }

    let cursor = AtomicUsize::new(0);
    let results: Vec<parking_lot_free::Slot> =
        (0..morsels).map(|_| parking_lot_free::Slot::new()).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(morsels) {
            scope.spawn(|_| loop {
                let m = cursor.fetch_add(1, Ordering::Relaxed);
                if m >= morsels {
                    break;
                }
                let base = m * morsel_rows;
                let end = (base + morsel_rows).min(rows);
                let sub: Vec<TypedPred<'_, T>> = preds
                    .iter()
                    .map(|p| TypedPred::new(&p.data[base..end], p.op, p.needle))
                    .collect();
                results[m].set(run_scan(imp, &sub, mode));
            });
        }
    })
    .expect("worker panicked");

    // Stitch morsel outputs in order, rebasing positions.
    let mut total = 0u64;
    let mut positions = PosList::new();
    for (m, slot) in results.iter().enumerate() {
        let out = slot.take().expect("every morsel was processed")?;
        match out {
            ScanOutput::Count(n) => total += n,
            ScanOutput::Positions(pl) => {
                let base = (m * morsel_rows) as u32;
                total += pl.len() as u64;
                for p in &pl {
                    positions.push(base + p);
                }
            }
        }
    }
    Ok(match mode {
        OutputMode::Count => ScanOutput::Count(total),
        OutputMode::Positions => ScanOutput::Positions(positions),
    })
}

/// Tiny once-settable cell so workers can publish results without locks
/// (each slot is written by exactly one worker, then read after the scope
/// joins).
mod parking_lot_free {
    use std::cell::UnsafeCell;
    use std::sync::atomic::{AtomicBool, Ordering};

    use super::{EngineError, ScanOutput};

    pub struct Slot {
        set: AtomicBool,
        value: UnsafeCell<Option<Result<ScanOutput, EngineError>>>,
    }

    // SAFETY: one writer per slot (distinct morsel index per worker pull),
    // reads happen only after the thread scope joined.
    unsafe impl Sync for Slot {}

    impl Slot {
        pub fn new() -> Slot {
            Slot { set: AtomicBool::new(false), value: UnsafeCell::new(None) }
        }

        pub fn set(&self, v: Result<ScanOutput, EngineError>) {
            // SAFETY: exactly one worker owns this morsel index.
            unsafe { *self.value.get() = Some(v) };
            self.set.store(true, Ordering::Release);
        }

        pub fn take(&self) -> Option<Result<ScanOutput, EngineError>> {
            if !self.set.load(Ordering::Acquire) {
                return None;
            }
            // SAFETY: all writers joined before take() is called.
            unsafe { (*self.value.get()).take() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RegWidth;
    use crate::reference;
    use fts_storage::CmpOp;

    fn workload(rows: usize) -> (Vec<u32>, Vec<u32>) {
        (
            (0..rows as u32).map(|i| i % 10).collect(),
            (0..rows as u32).map(|i| i.wrapping_mul(7) % 4).collect(),
        )
    }

    #[test]
    fn parallel_equals_sequential() {
        let (a, b) = workload(300_000);
        let preds =
            [TypedPred::new(&a[..], CmpOp::Eq, 5u32), TypedPred::new(&b[..], CmpOp::Ne, 2u32)];
        let expected = reference::scan_positions(&preds);
        let imp = crate::engine::best_fused_impl::<u32>();
        for threads in [1, 2, 4, 7] {
            for morsel in [1 << 10, 1 << 16, 999] {
                let got =
                    run_scan_parallel(imp, &preds, OutputMode::Positions, threads, morsel)
                        .unwrap();
                assert_eq!(
                    got.positions().unwrap(),
                    &expected,
                    "threads={threads} morsel={morsel}"
                );
                let got =
                    run_scan_parallel(imp, &preds, OutputMode::Count, threads, morsel).unwrap();
                assert_eq!(got.count(), expected.len() as u64);
            }
        }
    }

    #[test]
    fn tiny_and_empty_inputs() {
        let (a, b) = workload(3);
        let preds =
            [TypedPred::new(&a[..], CmpOp::Lt, 9u32), TypedPred::new(&b[..], CmpOp::Le, 3u32)];
        let expected = reference::scan_count(&preds);
        let got = run_scan_parallel(
            ScanImpl::FusedScalar(RegWidth::W128),
            &preds,
            OutputMode::Count,
            4,
            DEFAULT_MORSEL_ROWS,
        )
        .unwrap();
        assert_eq!(got.count(), expected);

        let empty: Vec<TypedPred<'_, u32>> = vec![];
        let got = run_scan_parallel(
            ScanImpl::SisdBranching,
            &empty,
            OutputMode::Count,
            4,
            DEFAULT_MORSEL_ROWS,
        )
        .unwrap();
        assert_eq!(got.count(), 0);
    }

    #[test]
    fn errors_propagate_from_workers() {
        let a = [1u16, 2, 3, 4];
        let preds = [TypedPred::eq(&a[..], 2u16)];
        if ScanImpl::FusedAvx2.available() {
            let err =
                run_scan_parallel(ScanImpl::FusedAvx2, &preds, OutputMode::Count, 2, 2)
                    .unwrap_err();
            assert!(matches!(err, EngineError::TypeUnsupported { .. }));
        }
    }

    #[test]
    fn many_threads_on_few_morsels() {
        let (a, b) = workload(5000);
        let preds =
            [TypedPred::new(&a[..], CmpOp::Eq, 5u32), TypedPred::new(&b[..], CmpOp::Eq, 1u32)];
        let expected = reference::scan_count(&preds);
        let got = run_scan_parallel(
            crate::engine::best_fused_impl::<u32>(),
            &preds,
            OutputMode::Count,
            64,
            500,
        )
        .unwrap();
        assert_eq!(got.count(), expected);
    }
}
