//! The strided-scan microbenchmark behind paper Fig. 2.
//!
//! §II's argument: a SISD scan that compares every 4-byte value cannot
//! saturate the memory bus; when only every n-th value is compared the same
//! number of cache lines stream in, so bytes/second rise while values
//! actually processed fall. The benchmark harness times
//! [`strided_count_eq`] for `skip = 0..=7` skipped values per 16-value
//! cache-line span and reports GB/s and values/µs, reproducing both panels
//! of Fig. 2.

/// Count occurrences of `needle` among every `stride`-th value of `data`.
///
/// `stride = 1` is the full SISD scan; `stride = 4` compares one value per
/// 16 bytes. The loop is deliberately scalar (one compare at a time) — the
/// point of the experiment is the per-value cost of SISD processing.
pub fn strided_count_eq(data: &[u32], needle: u32, stride: usize) -> u64 {
    assert!(stride >= 1, "stride must be at least 1");
    let mut total = 0u64;
    let mut i = 0usize;
    while i < data.len() {
        // black_box keeps the compiler from turning the stride-1 case into
        // a vectorized loop, which would defeat the experiment.
        total += u64::from(std::hint::black_box(data[i]) == needle);
        i += stride;
    }
    total
}

/// Derived metrics for one stride configuration (Fig. 2's two panels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrideMetrics {
    /// Values skipped per 64-byte cache line (Fig. 2's x-axis, `stride-1`
    /// in the unit of 4-byte values within a 16-value span scaled to the
    /// paper's 1..=7 axis).
    pub values_skipped: usize,
    /// Values actually compared.
    pub values_processed: u64,
    /// Bytes the scan streams through the memory bus. All cache lines are
    /// touched as long as `stride <= 16`, so this stays constant.
    pub bytes_touched: u64,
}

/// Measured peak sequential read bandwidth of this machine in GB/s.
///
/// Streams a 32 MiB buffer (larger than typical LLC slices) three times
/// and keeps the best run; the result is cached, so only the first call
/// pays the ~milliseconds of probing. [`crate::telemetry`] verdicts
/// compare a scan's achieved GB/s against this.
pub fn peak_bandwidth_gbps() -> f64 {
    static PEAK: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *PEAK.get_or_init(|| {
        let data: Vec<u32> = (0..(1u32 << 23)).collect();
        let bytes = std::mem::size_of_val(data.as_slice()) as f64;
        let mut best = 0.0f64;
        for _ in 0..3 {
            let started = std::time::Instant::now();
            // Wide unsigned sum — auto-vectorizes to full-width loads, so
            // the loop is load-bound, which is the point.
            let mut acc = 0u32;
            for &v in &data {
                acc = acc.wrapping_add(v);
            }
            std::hint::black_box(acc);
            best = best.max(bytes / started.elapsed().as_secs_f64() / 1e9);
        }
        best
    })
}

/// Compute the workload metrics for `rows` 4-byte values at `stride`.
pub fn stride_metrics(rows: usize, stride: usize) -> StrideMetrics {
    assert!(stride >= 1);
    let values_processed = rows.div_ceil(stride) as u64;
    let lines = if stride <= 16 {
        // Every cache line (16 × 4-byte values) is still touched.
        (rows as u64).div_ceil(16)
    } else {
        values_processed
    };
    StrideMetrics {
        values_skipped: stride - 1,
        values_processed,
        bytes_touched: lines * 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_one_counts_everything() {
        let data: Vec<u32> = (0..100).map(|i| i % 4).collect();
        assert_eq!(strided_count_eq(&data, 2, 1), 25);
    }

    #[test]
    fn stride_skips_values() {
        let data = [5u32, 0, 5, 0, 5, 0, 5, 0];
        assert_eq!(strided_count_eq(&data, 5, 2), 4); // indexes 0,2,4,6
        assert_eq!(strided_count_eq(&data, 5, 4), 2); // indexes 0,4
        assert_eq!(strided_count_eq(&data, 5, 8), 1); // index 0
        assert_eq!(strided_count_eq(&data, 0, 2), 0);
    }

    #[test]
    fn metrics_match_figure2_reasoning() {
        let m1 = stride_metrics(16_000_000, 1);
        let m4 = stride_metrics(16_000_000, 4);
        // Same bytes over the bus, a quarter of the compares.
        assert_eq!(m1.bytes_touched, m4.bytes_touched);
        assert_eq!(m4.values_processed * 4, m1.values_processed);
        assert_eq!(m1.values_skipped, 0);
        assert_eq!(m4.values_skipped, 3);
        assert_eq!(m1.bytes_touched, 16_000_000 / 16 * 64);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(strided_count_eq(&[], 1, 1), 0);
        assert_eq!(strided_count_eq(&[7], 7, 5), 1);
        let m = stride_metrics(1, 3);
        assert_eq!(m.values_processed, 1);
        assert_eq!(m.bytes_touched, 64);
    }
}
