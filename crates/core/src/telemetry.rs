//! Scan telemetry: what a scan did, not just what it returned.
//!
//! Every [`crate::ScanImpl`] run can produce a [`ScanTelemetry`] — blocks
//! scanned, per-stage flush/gather counts, per-predicate survivor counts
//! (hence observed selectivities), bytes touched, wall-clock time, and the
//! derived GB/s and values/µs. The query layer renders it as an
//! `EXPLAIN ANALYZE` block; the benchmark harness embeds it in JSON
//! reports.
//!
//! Collection is zero-cost when disabled: at [`TelemetryLevel::Off`] the
//! engine dispatches straight to the uninstrumented kernels — the hot
//! loops contain no telemetry code at all (the same no-op-sink idiom as
//! `fts_metrics::probe`). When enabled, the stage statistics for the
//! hardware fused kernels come from replaying the portable scalar model
//! engine ([`crate::fused::scalar`]) at the matching lane count with a
//! counting sink: all fused implementations execute the identical
//! per-block algorithm (they are differential-tested against the model),
//! so the replay's flush/gather counts are exact, while the wall-clock
//! time is measured on the real kernel.

use std::time::Duration;

use crate::blockwise;
use crate::engine::{RegWidth, ScanImpl};
use crate::fused::scalar::{fused_scan_model_sink, FusedSink};
use crate::pred::{OutputMode, TypedPred};
use fts_storage::NativeType;

/// How much telemetry a scan collects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryLevel {
    /// No collection; the scan path is byte-identical to the plain one.
    #[default]
    Off,
    /// Wall-clock, row/block counts and a bytes estimate only — no extra
    /// data passes.
    Timing,
    /// Everything: per-stage flush/gather statistics and per-predicate
    /// survivor counts. Costs one additional instrumented pass over the
    /// chain (the scalar-model replay or an analytic survivor pass), so
    /// use it for `EXPLAIN ANALYZE` and reports, not steady-state scans.
    Full,
}

/// Counters for one follow-up stage (predicate `1..P`) of a fused scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTelemetry {
    /// Times this stage's register-resident position list was flushed
    /// (evaluated via masked gather + compare).
    pub flushes: u64,
    /// Live lanes gathered across all flushes — equals the rows that
    /// survived the previous predicate.
    pub gathered: u64,
    /// Rows that survived this stage's predicate.
    pub survivors: u64,
}

/// What one scan (or one aggregated parallel scan) did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScanTelemetry {
    /// Whether anything was collected (`false` ⇒ all fields are zero).
    pub enabled: bool,
    /// [`ScanImpl::name`] of the implementation that ran.
    pub impl_name: &'static str,
    /// Rows scanned (summed over morsels).
    pub rows: u64,
    /// Predicates in the chain.
    pub predicates: usize,
    /// Vector lanes per block (1 for row-at-a-time implementations).
    pub lanes: usize,
    /// Blocks processed by the driver loop (for row-at-a-time
    /// implementations, rows; for the blockwise baselines, row-blocks).
    pub blocks: u64,
    /// Rows surviving predicates `0..=k`, one entry per predicate
    /// (populated at [`TelemetryLevel::Full`]).
    pub pred_survivors: Vec<u64>,
    /// Flush/gather counters per follow-up stage (fused implementations at
    /// [`TelemetryLevel::Full`] only).
    pub stages: Vec<StageTelemetry>,
    /// Column bytes the implementation actually touched (driver reads plus
    /// gathers/rescans; see [`collect`] for the per-implementation model).
    pub bytes_touched: u64,
    /// Wall-clock time of the real kernel (for parallel scans: the
    /// parallel region, not the sum of worker times).
    pub wall: Duration,
    /// Morsels aggregated into this record (1 for a single-threaded run).
    pub morsels: u64,
    /// Worker threads that ran (1 for a single-threaded run).
    pub threads: usize,
}

/// The bandwidth-vs-compute verdict for a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundVerdict {
    /// The scan moved bytes at ≥ 60 % of the machine's peak sequential
    /// read bandwidth: it is limited by memory, not instructions.
    BandwidthBound,
    /// The scan ran well below peak bandwidth: instructions (or gather
    /// latency) limit it, so a better kernel could go faster.
    ComputeBound,
}

impl std::fmt::Display for BoundVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundVerdict::BandwidthBound => write!(f, "bandwidth-bound"),
            BoundVerdict::ComputeBound => write!(f, "compute-bound"),
        }
    }
}

impl ScanTelemetry {
    /// The record produced when collection is off: everything zero,
    /// `enabled == false`.
    pub fn disabled(impl_name: &'static str) -> ScanTelemetry {
        ScanTelemetry {
            impl_name,
            ..ScanTelemetry::default()
        }
    }

    /// Observed selectivity of each predicate: survivors of predicate `k`
    /// over the rows it evaluated (rows surviving `0..k`). Every entry is
    /// in `[0, 1]`; empty unless collected at [`TelemetryLevel::Full`].
    pub fn selectivities(&self) -> Vec<f64> {
        let mut prev = self.rows;
        self.pred_survivors
            .iter()
            .map(|&s| {
                let sel = if prev == 0 {
                    0.0
                } else {
                    s as f64 / prev as f64
                };
                prev = s;
                sel
            })
            .collect()
    }

    /// Fraction of all rows that survived the whole chain.
    pub fn overall_selectivity(&self) -> f64 {
        match (self.pred_survivors.last(), self.rows) {
            (Some(&s), rows) if rows > 0 => s as f64 / rows as f64,
            _ => 0.0,
        }
    }

    /// Achieved memory bandwidth in GB/s (`bytes_touched / wall`).
    pub fn gb_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.bytes_touched as f64 / secs / 1e9
        } else {
            0.0
        }
    }

    /// Scan throughput in values per microsecond (driver rows over wall
    /// time — the paper's Fig. 5 metric).
    pub fn values_per_us(&self) -> f64 {
        let us = self.wall.as_secs_f64() * 1e6;
        if us > 0.0 {
            self.rows as f64 / us
        } else {
            0.0
        }
    }

    /// Classify the scan against the machine's peak sequential read
    /// bandwidth (GB/s), e.g. from `fts_core::stride::peak_bandwidth`.
    pub fn verdict(&self, peak_gb_per_sec: f64) -> BoundVerdict {
        if peak_gb_per_sec > 0.0 && self.gb_per_sec() >= 0.6 * peak_gb_per_sec {
            BoundVerdict::BandwidthBound
        } else {
            BoundVerdict::ComputeBound
        }
    }

    /// Fold another record (e.g. one morsel's) into this one: counters
    /// add, structure fields must agree.
    pub fn merge(&mut self, other: &ScanTelemetry) {
        self.enabled |= other.enabled;
        self.rows += other.rows;
        self.blocks += other.blocks;
        self.bytes_touched += other.bytes_touched;
        self.wall += other.wall;
        self.morsels += other.morsels;
        self.predicates = self.predicates.max(other.predicates);
        self.lanes = self.lanes.max(other.lanes);
        self.threads = self.threads.max(other.threads);
        if self.pred_survivors.len() < other.pred_survivors.len() {
            self.pred_survivors.resize(other.pred_survivors.len(), 0);
        }
        for (a, b) in self.pred_survivors.iter_mut().zip(&other.pred_survivors) {
            *a += b;
        }
        if self.stages.len() < other.stages.len() {
            self.stages
                .resize(other.stages.len(), StageTelemetry::default());
        }
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            a.flushes += b.flushes;
            a.gathered += b.gathered;
            a.survivors += b.survivors;
        }
    }

    /// Render the `EXPLAIN ANALYZE` block for this scan.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if !self.enabled {
            let _ = writeln!(out, "Scan [{}]  (telemetry off)", self.impl_name);
            return out;
        }
        let _ = writeln!(
            out,
            "Scan [{}]  rows={}  preds={}  lanes={}  blocks={}",
            self.impl_name, self.rows, self.predicates, self.lanes, self.blocks
        );
        let _ = writeln!(
            out,
            "  wall={:.3?}  throughput={:.1} values/µs  bandwidth={:.2} GB/s  bytes={}",
            self.wall,
            self.values_per_us(),
            self.gb_per_sec(),
            self.bytes_touched
        );
        if self.morsels > 1 || self.threads > 1 {
            let _ = writeln!(out, "  morsels={}  threads={}", self.morsels, self.threads);
        }
        let sels = self.selectivities();
        for (k, (&surv, sel)) in self.pred_survivors.iter().zip(&sels).enumerate() {
            if k == 0 {
                let _ = writeln!(out, "  pred 0 (driver): survivors={surv}  sel={sel:.4}");
            } else if let Some(st) = self.stages.get(k - 1) {
                let _ = writeln!(
                    out,
                    "  pred {k} (stage {k}): flushes={}  gathered={}  survivors={surv}  sel={sel:.4}",
                    st.flushes, st.gathered
                );
            } else {
                let _ = writeln!(out, "  pred {k}: survivors={surv}  sel={sel:.4}");
            }
        }
        out
    }
}

/// Counting sink plugged into the scalar model engine for the replay.
#[derive(Default)]
struct StatsSink {
    blocks: u64,
    driver_matches: u64,
    stages: Vec<StageTelemetry>,
}

impl FusedSink for StatsSink {
    fn driver_block(&mut self, matches: usize) {
        self.blocks += 1;
        self.driver_matches += matches as u64;
    }

    fn stage_flush(&mut self, stage: usize, gathered: usize, survivors: usize) {
        if self.stages.len() < stage {
            self.stages.resize(stage, StageTelemetry::default());
        }
        let st = &mut self.stages[stage - 1];
        st.flushes += 1;
        st.gathered += gathered as u64;
        st.survivors += survivors as u64;
    }
}

/// Lane count the implementation processes per block for element type `T`
/// (`None` for row/block-at-a-time implementations).
fn fused_lanes<T: NativeType>(imp: ScanImpl) -> Option<usize> {
    match imp {
        // The portable engine maps a register width to 32-bit lane counts
        // regardless of T (see `run_scan`).
        ScanImpl::FusedScalar(w) => Some(w.lanes32()),
        ScanImpl::FusedAvx2 => Some(RegWidth::W128.bits() / (8 * std::mem::size_of::<T>())),
        ScanImpl::FusedAvx512(w) => Some(w.bits() / (8 * std::mem::size_of::<T>())),
        _ => None,
    }
}

/// Replay the chain through the instrumented scalar model engine at `N`
/// lanes and return the counting sink.
fn replay<T: NativeType, const N: usize>(preds: &[TypedPred<'_, T>]) -> StatsSink {
    let mut sink = StatsSink::default();
    fused_scan_model_sink::<T, N, _>(preds, OutputMode::Count, &mut sink);
    sink
}

/// Build the telemetry record for a scan that already ran (the caller
/// stamps `wall` with the real kernel's measured time).
///
/// Bytes-touched model per implementation family:
/// * SISD branching — predicate `k` reads only the rows surviving `0..k`
///   (short-circuit), so `Σ survivors[k-1] · size`.
/// * SISD auto-vec / blockwise — every predicate reads every row.
/// * Fused — the driver streams all rows once; each follow-up stage
///   gathers exactly the survivors of the previous predicate.
pub fn collect<T: NativeType>(
    imp: ScanImpl,
    preds: &[TypedPred<'_, T>],
    level: TelemetryLevel,
) -> ScanTelemetry {
    let size = std::mem::size_of::<T>() as u64;
    let rows = preds.first().map_or(0, |p| p.data.len()) as u64;
    let lanes = fused_lanes::<T>(imp);
    let mut t = ScanTelemetry {
        enabled: true,
        impl_name: imp.name(),
        rows,
        predicates: preds.len(),
        lanes: lanes.unwrap_or(1),
        blocks: match imp {
            ScanImpl::BlockBitmap | ScanImpl::BlockSelVec => {
                rows.div_ceil(blockwise::DEFAULT_BLOCK_ROWS as u64)
            }
            _ => rows.div_ceil(lanes.unwrap_or(1).max(1) as u64),
        },
        bytes_touched: rows * size * preds.len() as u64,
        morsels: 1,
        threads: 1,
        ..ScanTelemetry::default()
    };
    if level != TelemetryLevel::Full || preds.is_empty() {
        return t;
    }

    match lanes {
        Some(n) => {
            let sink = match n {
                2 => replay::<T, 2>(preds),
                4 => replay::<T, 4>(preds),
                8 => replay::<T, 8>(preds),
                16 => replay::<T, 16>(preds),
                32 => replay::<T, 32>(preds),
                // Unreachable for combinations run_scan accepts; leave
                // stage stats empty rather than guess.
                _ => StatsSink::default(),
            };
            t.blocks = sink.blocks.max(t.blocks);
            t.pred_survivors = std::iter::once(sink.driver_matches)
                .chain(sink.stages.iter().map(|s| s.survivors))
                .collect();
            t.stages = sink.stages;
            t.bytes_touched = rows * size + t.stages.iter().map(|s| s.gathered * size).sum::<u64>();
        }
        None => {
            // Analytic prefix-survivor pass for the row/block baselines.
            let mut survivors = vec![0u64; preds.len()];
            for row in 0..rows as usize {
                for (k, p) in preds.iter().enumerate() {
                    if !p.matches(row) {
                        break;
                    }
                    survivors[k] += 1;
                }
            }
            if imp == ScanImpl::SisdBranching {
                let mut bytes = rows * size;
                for &s in &survivors[..preds.len() - 1] {
                    bytes += s * size;
                }
                t.bytes_touched = bytes;
            }
            t.pred_survivors = survivors;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_scan, run_scan_telemetered};
    use fts_storage::CmpOp;

    fn chain(rows: u32) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        (
            (0..rows).map(|i| i % 2).collect(),
            (0..rows).map(|i| i % 4).collect(),
            (0..rows).map(|i| i % 8).collect(),
        )
    }

    #[test]
    fn fused_stage_counters_are_exact() {
        let (a, b, c) = chain(4096);
        let preds = [
            TypedPred::eq(&a[..], 1u32),
            TypedPred::new(&b[..], CmpOp::Le, 1u32),
            TypedPred::eq(&c[..], 1u32),
        ];
        let imp = ScanImpl::FusedScalar(RegWidth::W512);
        let (out, t) =
            run_scan_telemetered(imp, &preds, OutputMode::Count, TelemetryLevel::Full).unwrap();
        assert!(t.enabled);
        assert_eq!(t.rows, 4096);
        assert_eq!(t.lanes, 16);
        assert_eq!(t.blocks, 4096 / 16);
        // i%2==1 → 2048; of those i%4<=1 → the i%4==1 half → 1024; of
        // those i%8==1 → 512.
        assert_eq!(t.pred_survivors, vec![2048, 1024, 512]);
        assert_eq!(out.count(), 512);
        // Stage 1 gathers exactly the driver survivors, stage 2 exactly
        // stage 1's survivors.
        assert_eq!(t.stages[0].gathered, 2048);
        assert_eq!(t.stages[1].gathered, 1024);
        assert!(t.stages[0].flushes >= 2048 / 16);
        let sels = t.selectivities();
        assert!((sels[0] - 0.5).abs() < 1e-9, "{sels:?}");
        assert!((sels[1] - 0.5).abs() < 1e-9);
        assert!((sels[2] - 0.5).abs() < 1e-9);
        assert!(sels.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn survivors_match_across_impl_families() {
        let (a, b, _) = chain(3000);
        let preds = [
            TypedPred::eq(&a[..], 1u32),
            TypedPred::new(&b[..], CmpOp::Ne, 3u32),
        ];
        let expected = run_scan(ScanImpl::SisdBranching, &preds, OutputMode::Count)
            .unwrap()
            .count();
        for imp in [
            ScanImpl::SisdBranching,
            ScanImpl::SisdAutoVec,
            ScanImpl::BlockBitmap,
            ScanImpl::BlockSelVec,
            ScanImpl::FusedScalar(RegWidth::W128),
            crate::engine::best_fused_impl::<u32>(),
        ] {
            let (out, t) =
                run_scan_telemetered(imp, &preds, OutputMode::Count, TelemetryLevel::Full).unwrap();
            assert_eq!(out.count(), expected, "{}", imp.name());
            assert_eq!(
                *t.pred_survivors.last().unwrap(),
                expected,
                "{} survivors",
                imp.name()
            );
            assert!(t.bytes_touched > 0);
            assert!(t.selectivities().iter().all(|s| (0.0..=1.0).contains(s)));
        }
    }

    #[test]
    fn disabled_telemetry_changes_nothing() {
        let (a, b, _) = chain(1000);
        let preds = [TypedPred::eq(&a[..], 1u32), TypedPred::eq(&b[..], 1u32)];
        let imp = crate::engine::best_fused_impl::<u32>();
        let plain = run_scan(imp, &preds, OutputMode::Positions).unwrap();
        let (out, t) =
            run_scan_telemetered(imp, &preds, OutputMode::Positions, TelemetryLevel::Off).unwrap();
        assert_eq!(out, plain);
        assert!(!t.enabled);
        assert_eq!(t.rows, 0);
        assert_eq!(t.wall, Duration::ZERO);
    }

    #[test]
    fn merge_sums_counters() {
        let (a, b, _) = chain(1024);
        let preds = [TypedPred::eq(&a[..], 1u32), TypedPred::eq(&b[..], 1u32)];
        let imp = ScanImpl::FusedScalar(RegWidth::W256);
        let (_, whole) =
            run_scan_telemetered(imp, &preds, OutputMode::Count, TelemetryLevel::Full).unwrap();
        let half = [
            TypedPred::eq(&a[..512], 1u32),
            TypedPred::eq(&b[..512], 1u32),
        ];
        let other = [
            TypedPred::eq(&a[512..], 1u32),
            TypedPred::eq(&b[512..], 1u32),
        ];
        let (_, mut m0) =
            run_scan_telemetered(imp, &half, OutputMode::Count, TelemetryLevel::Full).unwrap();
        let (_, m1) =
            run_scan_telemetered(imp, &other, OutputMode::Count, TelemetryLevel::Full).unwrap();
        m0.merge(&m1);
        assert_eq!(m0.rows, whole.rows);
        assert_eq!(
            m0.blocks, whole.blocks,
            "512 is lane-aligned: block sums must agree"
        );
        assert_eq!(m0.pred_survivors, whole.pred_survivors);
        assert_eq!(m0.morsels, 2);
    }

    #[test]
    fn verdict_and_render() {
        let (a, _, _) = chain(1 << 16);
        let preds = [TypedPred::eq(&a[..], 1u32)];
        let (_, t) = run_scan_telemetered(
            crate::engine::best_fused_impl::<u32>(),
            &preds,
            OutputMode::Count,
            TelemetryLevel::Full,
        )
        .unwrap();
        assert!(t.gb_per_sec() > 0.0);
        assert!(t.values_per_us() > 0.0);
        // Against an absurdly high peak the scan is compute-bound; against
        // a tiny peak it is bandwidth-bound.
        assert_eq!(t.verdict(1e12), BoundVerdict::ComputeBound);
        assert_eq!(t.verdict(1e-9), BoundVerdict::BandwidthBound);
        let text = t.render();
        assert!(text.contains("values/µs"), "{text}");
        assert!(text.contains("pred 0"), "{text}");
        let off = ScanTelemetry::disabled("X");
        assert!(off.render().contains("telemetry off"));
    }
}
