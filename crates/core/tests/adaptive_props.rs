//! Property tests for the adaptive selector: whatever kernel the selector
//! can choose, the answer is the same. Every candidate the cost model
//! ranks ([`fts_core::candidate_scan_impls`]) and the full adaptive runner
//! ([`fts_core::run_scan_adaptive`]) — whose probe/steady phases stitch
//! morsel results back together — must produce the reference's count and
//! exact position list on randomized chains, so calibration can never
//! change a query's result, only its speed.

use fts_core::{
    candidate_scan_impls, rank_scan_impls, reference, run_scan, run_scan_adaptive, AdaptiveConfig,
    CalibrationConfig, ChainProfile, OutputMode, ScanElem, TelemetryLevel, TypedPred,
};
use fts_storage::{CmpOp, NativeType};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(CmpOp::ALL.to_vec())
}

/// Small morsels + a small drift window so tiny proptest tables still
/// exercise probe round-robin, winner pick, and steady-state windows.
fn tiny_adaptive_cfg() -> AdaptiveConfig {
    AdaptiveConfig {
        calibration: CalibrationConfig {
            recheck_rows: 128,
            ..CalibrationConfig::default()
        },
        threads: 2,
        morsel_rows: 64,
    }
}

fn check_candidates_and_adaptive<T: ScanElem + NativeType>(
    cols: &[Vec<T>],
    ops: &[CmpOp],
    needles: &[T],
    expected_sel: f64,
) -> Result<(), TestCaseError> {
    let preds: Vec<TypedPred<'_, T>> = cols
        .iter()
        .zip(ops)
        .zip(needles)
        .map(|((c, &op), &n)| TypedPred::new(&c[..], op, n))
        .collect();
    let expected = reference::scan_positions(&preds);

    // Every kernel the selector may hand a morsel to is interchangeable.
    for imp in candidate_scan_impls::<T>() {
        let got = run_scan(imp, &preds, OutputMode::Positions).unwrap();
        prop_assert_eq!(
            got.positions().unwrap(),
            &expected,
            "{} positions",
            imp.name()
        );
        let got = run_scan(imp, &preds, OutputMode::Count).unwrap();
        prop_assert_eq!(got.count(), expected.len() as u64, "{} count", imp.name());
    }

    // The adaptive runner (probe morsels + steady remainder) stitches the
    // same result regardless of which kernels calibration happened to try.
    let rows = cols.first().map_or(0, Vec::len);
    let profile = ChainProfile::uniform_u32(rows as u64, preds.len(), expected_sel);
    let cfg = tiny_adaptive_cfg();
    let (out, _, report) = run_scan_adaptive(
        &preds,
        OutputMode::Positions,
        &profile,
        &cfg,
        TelemetryLevel::Off,
    )
    .unwrap();
    prop_assert_eq!(out.positions().unwrap(), &expected, "adaptive positions");
    let (out, _, _) = run_scan_adaptive(
        &preds,
        OutputMode::Count,
        &profile,
        &cfg,
        TelemetryLevel::Off,
    )
    .unwrap();
    prop_assert_eq!(out.count(), expected.len() as u64, "adaptive count");

    // The plan-time ranking covers exactly the candidate set.
    let ranked = rank_scan_impls(&candidate_scan_impls::<T>(), &profile, 20.0);
    prop_assert_eq!(ranked.len(), candidate_scan_impls::<T>().len());
    // Convergence needs one probe morsel per top-ranked candidate; shorter
    // tables legitimately end mid-probe, and a drift re-probe near the end
    // of the table can also leave the calibrator probing — both still with
    // the right answer.
    let probe_rows = cfg.morsel_rows * cfg.calibration.top_candidates;
    if rows > probe_rows {
        prop_assert!(
            report.calibration.winner.is_some() || report.calibration.reprobes > 0,
            "calibration neither converged nor re-probed"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn u32_chains_agree_across_selector_kernels(
        rows in 0usize..1500,
        p in 1usize..=4,
        domain in 1u32..40,
        ops in prop::collection::vec(op_strategy(), 4),
        needles in prop::collection::vec(0u32..40, 4),
        sel in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let cols: Vec<Vec<u32>> = (0..p)
            .map(|_| (0..rows).map(|_| (rng() % domain as u64) as u32).collect())
            .collect();
        check_candidates_and_adaptive(&cols, &ops[..p], &needles[..p], sel)?;
    }

    #[test]
    fn i32_chains_agree_across_selector_kernels(
        rows in 0usize..900,
        p in 1usize..=3,
        ops in prop::collection::vec(op_strategy(), 3),
        needles in prop::collection::vec(-20i32..20, 3),
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let cols: Vec<Vec<i32>> = (0..p)
            .map(|_| (0..rows).map(|_| (rng() % 41) as i32 - 20).collect())
            .collect();
        check_candidates_and_adaptive(&cols, &ops[..p], &needles[..p], 0.1)?;
    }

    #[test]
    fn u64_chains_agree_across_selector_kernels(
        rows in 0usize..700,
        ops in prop::collection::vec(op_strategy(), 2),
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Values straddling 2^32 exercise the full 64-bit compare path.
        let base = u32::MAX as u64 - 5;
        let cols: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..rows).map(|_| base + rng() % 11).collect())
            .collect();
        check_candidates_and_adaptive(&cols, &ops[..2], &[base + 5, base + 3], 0.3)?;
    }
}

/// A misleading plan-time selectivity estimate may trigger drift re-probes
/// but must never change the result.
#[test]
fn wrong_estimate_only_costs_time() {
    let rows = 20_000u32;
    let a: Vec<u32> = (0..rows).map(|i| i % 2).collect();
    let preds = [TypedPred::eq(&a[..], 1u32)];
    let expected = reference::scan_positions(&preds);
    // Claimed 0.1 % selective, actually 50 %.
    let profile = ChainProfile::uniform_u32(rows as u64, 1, 0.001);
    let (out, _, report) = run_scan_adaptive(
        &preds,
        OutputMode::Positions,
        &profile,
        &tiny_adaptive_cfg(),
        TelemetryLevel::Full,
    )
    .unwrap();
    assert_eq!(out.positions().unwrap(), &expected);
    assert!(
        (report.calibration.observed_selectivity - 0.5).abs() < 0.01,
        "observed {}",
        report.calibration.observed_selectivity
    );
}
