//! Property tests for boolean predicate trees: for random bounded-depth
//! AND/OR/NOT expressions over random columns, the mask-combining fused
//! execution ([`run_scan_bool`]) must agree exactly with the row-at-a-time
//! tree walk ([`reference_scan_bool`]) — for every implementation, element
//! type, and output mode.

use fts_core::{
    reference_scan_bool, run_scan_bool, BoolExpr, OutputMode, RegWidth, ScanElem, ScanImpl,
    TypedPred,
};
use fts_storage::{CmpOp, NativeType};
use proptest::prelude::*;

/// An abstract leaf: column index, operator, and a small needle selector
/// that each element type maps into its own domain.
#[derive(Debug, Clone, Copy)]
struct Leaf {
    col: usize,
    op: CmpOp,
    needle: u32,
}

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

/// Build a random boolean tree of bounded depth with fan-out 2..=3 — deep
/// enough to produce nested NOTs, mixed AND-of-OR shapes, and (after DNF
/// expansion) multi-disjunct factored plans, small enough to stay under
/// the DNF cap most of the time so the fused path gets exercised.
fn random_tree(rng: &mut impl FnMut() -> u64, depth: u32, cols: usize) -> BoolExpr<Leaf> {
    let choice = if depth == 0 { 0 } else { rng() % 8 };
    match choice {
        // Leaves dominate so trees stay small; NOT is rarest.
        0..=3 => BoolExpr::pred(Leaf {
            col: rng() as usize % cols,
            op: CmpOp::ALL[rng() as usize % CmpOp::ALL.len()],
            needle: (rng() % 16) as u32,
        }),
        4 | 5 => BoolExpr::and(
            (0..2 + rng() % 2)
                .map(|_| random_tree(rng, depth - 1, cols))
                .collect(),
        ),
        6 => BoolExpr::or(
            (0..2 + rng() % 2)
                .map(|_| random_tree(rng, depth - 1, cols))
                .collect(),
        ),
        _ => BoolExpr::not(random_tree(rng, depth - 1, cols)),
    }
}

fn impls() -> Vec<ScanImpl> {
    let mut v = vec![
        ScanImpl::SisdBranching,
        ScanImpl::SisdAutoVec,
        ScanImpl::BlockBitmap,
        ScanImpl::BlockSelVec,
        ScanImpl::FusedScalar(RegWidth::W128),
        ScanImpl::FusedScalar(RegWidth::W512),
    ];
    for imp in [
        ScanImpl::FusedAvx2,
        ScanImpl::FusedAvx512(RegWidth::W256),
        ScanImpl::FusedAvx512(RegWidth::W512),
    ] {
        if imp.available() {
            v.push(imp);
        }
    }
    v
}

/// Bind the abstract tree to typed columns and check every implementation
/// against the row-wise reference, in both output modes.
fn check_tree<T: ScanElem + NativeType>(
    expr: &BoolExpr<Leaf>,
    cols: &[Vec<T>],
    needle_of: impl Fn(u32) -> T,
) -> Result<(), TestCaseError> {
    check_tree_with(&impls(), expr, cols, needle_of)
}

fn check_tree_with<T: ScanElem + NativeType>(
    impls: &[ScanImpl],
    expr: &BoolExpr<Leaf>,
    cols: &[Vec<T>],
    needle_of: impl Fn(u32) -> T,
) -> Result<(), TestCaseError> {
    let rows = cols[0].len();
    let typed: BoolExpr<TypedPred<'_, T>> = expr
        .clone()
        .map(&mut |l: Leaf| TypedPred::new(&cols[l.col][..], l.op, needle_of(l.needle)));
    let expected = reference_scan_bool(&typed, rows);
    prop_assert!(expected.is_valid(), "reference emits valid positions");

    for &imp in impls {
        let got = run_scan_bool(imp, &typed, OutputMode::Positions).unwrap();
        prop_assert_eq!(
            got.positions().unwrap(),
            &expected,
            "{} positions for {:?}",
            imp.name(),
            expr
        );
        let got = run_scan_bool(imp, &typed, OutputMode::Count).unwrap();
        prop_assert_eq!(got.count(), expected.len() as u64, "{} count", imp.name());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn u32_trees_agree_with_reference(
        tree_seed in any::<u64>(),
        data_seed in any::<u64>(),
        depth in 1u32..=3,
        rows in 0usize..900,
    ) {
        let mut trng = xorshift(tree_seed);
        let expr = random_tree(&mut trng, depth, 3);
        let mut rng = xorshift(data_seed);
        let cols: Vec<Vec<u32>> = (0..3)
            .map(|_| (0..rows).map(|_| (rng() % 16) as u32).collect())
            .collect();
        check_tree(&expr, &cols, |n| n)?;
    }

    #[test]
    fn i32_trees_with_negatives_agree_with_reference(
        tree_seed in any::<u64>(),
        data_seed in any::<u64>(),
        depth in 1u32..=3,
        rows in 0usize..700,
    ) {
        let mut trng = xorshift(tree_seed);
        let expr = random_tree(&mut trng, depth, 2);
        let mut rng = xorshift(data_seed);
        let cols: Vec<Vec<i32>> = (0..2)
            .map(|_| (0..rows).map(|_| (rng() % 17) as i32 - 8).collect())
            .collect();
        check_tree(&expr, &cols, |n| n as i32 - 8)?;
    }

    #[test]
    fn u64_trees_straddling_u32_agree_with_reference(
        tree_seed in any::<u64>(),
        data_seed in any::<u64>(),
        depth in 1u32..=3,
        rows in 0usize..500,
    ) {
        let mut trng = xorshift(tree_seed);
        let expr = random_tree(&mut trng, depth, 2);
        // Values straddling 2^32 exercise the 64-bit compare path under
        // mask combination.
        let base = u32::MAX as u64 - 8;
        let mut rng = xorshift(data_seed);
        let cols: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..rows).map(|_| base + rng() % 16).collect())
            .collect();
        // AVX2 Fused and the block engines have no 64-bit kernels.
        let mut impls64 = vec![
            ScanImpl::SisdBranching,
            ScanImpl::SisdAutoVec,
            ScanImpl::FusedScalar(RegWidth::W256),
        ];
        if ScanImpl::FusedAvx512(RegWidth::W512).available() {
            impls64.push(ScanImpl::FusedAvx512(RegWidth::W512));
        }
        check_tree_with(&impls64, &expr, &cols, |n| base + n as u64)?;
    }

    /// DNF blowup fallback: wide AND-of-ORs exceed the disjunct cap and
    /// must fall back to the row-wise tree walk — still exact.
    #[test]
    fn dnf_blowup_falls_back_correctly(
        data_seed in any::<u64>(),
        needle_seed in any::<u64>(),
        rows in 1usize..400,
    ) {
        let mut rng = xorshift(data_seed);
        let col: Vec<u32> = (0..rows).map(|_| (rng() % 16) as u32).collect();
        // AND of 6 ORs of 2 leaves each → 2^6 = 64 disjuncts > cap (32).
        let mut nrng = xorshift(needle_seed);
        let expr = BoolExpr::and(
            (0..6)
                .map(|_| {
                    BoolExpr::or(vec![
                        BoolExpr::pred(Leaf { col: 0, op: CmpOp::Ne, needle: (nrng() % 16) as u32 }),
                        BoolExpr::pred(Leaf { col: 0, op: CmpOp::Ge, needle: (nrng() % 16) as u32 }),
                    ])
                })
                .collect(),
        );
        let cols = vec![col];
        check_tree(&expr, &cols, |n| n)?;
    }
}
