//! Differential property tests for the compressed-domain scans: the
//! frame-of-reference fused chain and the byte-sliced scan must agree
//! with a plain row loop over the decoded data for every operator,
//! random widths/offsets/clusterings, and needles both inside and far
//! outside the stored domain (the overflow-rewrite paths).

use fts_core::{fused_scan_for, scan_bytesliced, ForPred, OutputMode, TypedPred};
use fts_storage::{ByteSlicedColumn, CmpOp, ForColumn, NativeType, PosList};
use proptest::prelude::*;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn values(rows: usize, base: u32, span: u32, sorted: bool, seed: u64) -> Vec<u32> {
    let mut state = seed | 1;
    let mut v: Vec<u32> = (0..rows)
        .map(|_| base.saturating_add((xorshift(&mut state) % span.max(1) as u64) as u32))
        .collect();
    if sorted {
        v.sort_unstable();
    }
    v
}

/// Row-loop oracle over the decoded values.
fn oracle(cols: &[&[u32]], ops: &[CmpOp], needles: &[u32]) -> PosList {
    let rows = cols.first().map_or(0, |c| c.len());
    let mut out = PosList::new();
    for row in 0..rows {
        let all = cols
            .iter()
            .zip(ops)
            .zip(needles)
            .all(|((c, &op), &n)| c[row].cmp_op(op, n));
        if all {
            out.push(row as u32);
        }
    }
    out
}

fn op_strategy() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(CmpOp::ALL.to_vec())
}

/// Needles in-domain, at the domain edges, and far outside it — the
/// out-of-domain cases are where the per-block rewrite must resolve to
/// always/never rather than a wrapped compare.
fn needle_for(base: u32, span: u32, pick: u8, raw: u32) -> u32 {
    match pick % 5 {
        0 => base.saturating_add(raw % span.max(1)),
        1 => base,
        2 => base.saturating_add(span),
        3 => base.saturating_sub(1000),
        _ => base.saturating_add(span).saturating_add(1000),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mixed FoR/plain chains agree with the row-loop oracle in both
    /// output modes, and the built-in reference agrees too.
    #[test]
    fn for_chains_match_plain_oracle(
        rows in 0usize..1500,
        preds in 1usize..=3,
        base in prop::sample::select(vec![0u32, 100, 3_900_000_000]),
        span in prop::sample::select(vec![1u32, 16, 300, 70_000]),
        sorted in any::<bool>(),
        ops in prop::collection::vec(op_strategy(), 3),
        picks in prop::collection::vec(any::<u8>(), 3),
        raws in prop::collection::vec(any::<u32>(), 3),
        plain_mask in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let cols: Vec<Vec<u32>> = (0..preds)
            .map(|i| values(rows, base, span, sorted, seed.wrapping_add(i as u64)))
            .collect();
        let needles: Vec<u32> = (0..preds)
            .map(|i| needle_for(base, span, picks[i], raws[i]))
            .collect();
        let encoded: Vec<Option<ForColumn>> = (0..preds)
            .map(|i| (plain_mask >> i) & 1 == 0)
            .zip(&cols)
            .map(|(enc, c)| enc.then(|| ForColumn::encode(c)))
            .collect();
        let chain: Vec<ForPred<'_>> = encoded
            .iter()
            .zip(&cols)
            .zip(&ops[..preds])
            .zip(&needles)
            .map(|(((enc, c), &op), &n)| match enc {
                Some(col) => ForPred::For { col, op, needle: n },
                None => ForPred::Plain(TypedPred::new(&c[..], op, n)),
            })
            .collect();

        let refs: Vec<&[u32]> = cols.iter().map(|c| &c[..]).collect();
        let expected = oracle(&refs, &ops[..preds], &needles);

        let (got, _) = fused_scan_for(&chain, OutputMode::Positions).unwrap();
        prop_assert_eq!(got.positions().unwrap(), &expected, "positions");
        let (got, _) = fused_scan_for(&chain, OutputMode::Count).unwrap();
        prop_assert_eq!(got.count(), expected.len() as u64, "count");
        prop_assert_eq!(&fts_core::scan_for_reference(&chain), &expected, "reference");
    }

    /// The byte-sliced scan agrees with the row-loop oracle for every
    /// operator and widths from one to four planes.
    #[test]
    fn bytesliced_matches_plain_oracle(
        rows in 0usize..1500,
        bits in 1u32..=31,
        sorted in any::<bool>(),
        op in op_strategy(),
        pick in any::<u8>(),
        raw in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let span = if bits >= 32 { u32::MAX } else { (1u32 << bits) - 1 }.max(1);
        let v = values(rows, 0, span, sorted, seed);
        let col = ByteSlicedColumn::encode(&v);
        let needle = needle_for(0, span, pick, raw);
        let expected = oracle(&[&v], &[op], &[needle]);

        let (got, _) = scan_bytesliced(&col, op, needle, OutputMode::Positions);
        prop_assert_eq!(got.positions().unwrap(), &expected, "positions");
        let (got, stats) = scan_bytesliced(&col, op, needle, OutputMode::Count);
        prop_assert_eq!(got.count(), expected.len() as u64, "count");
        // The early-exit never reads more plane-groups than exist.
        let groups = rows.div_ceil(64) as u64;
        prop_assert!(stats.plane_groups_read <= groups * col.planes() as u64);
    }
}
