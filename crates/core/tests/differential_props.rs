//! Property tests: every scan implementation agrees with the reference row
//! loop on randomized workloads, for multiple element types, operators,
//! chain lengths, and row counts — including the position-list invariants
//! the fused engines rely on.

use fts_core::{
    reference, run_scan, run_scan_parallel, OutputMode, RegWidth, ScanElem, ScanImpl, TypedPred,
};
use fts_storage::{CmpOp, NativeType};
use proptest::prelude::*;

fn impls_for_32bit() -> Vec<ScanImpl> {
    let mut v = vec![
        ScanImpl::SisdBranching,
        ScanImpl::SisdAutoVec,
        ScanImpl::BlockBitmap,
        ScanImpl::BlockSelVec,
        ScanImpl::FusedScalar(RegWidth::W128),
        ScanImpl::FusedScalar(RegWidth::W256),
        ScanImpl::FusedScalar(RegWidth::W512),
    ];
    for imp in [
        ScanImpl::FusedAvx2,
        ScanImpl::FusedAvx512(RegWidth::W128),
        ScanImpl::FusedAvx512(RegWidth::W256),
        ScanImpl::FusedAvx512(RegWidth::W512),
    ] {
        if imp.available() {
            v.push(imp);
        }
    }
    v
}

fn check_all<T: ScanElem + NativeType>(
    impls: &[ScanImpl],
    cols: &[Vec<T>],
    ops: &[CmpOp],
    needles: &[T],
) -> Result<(), TestCaseError> {
    let preds: Vec<TypedPred<'_, T>> = cols
        .iter()
        .zip(ops)
        .zip(needles)
        .map(|((c, &op), &n)| TypedPred::new(&c[..], op, n))
        .collect();
    let expected = reference::scan_positions(&preds);
    prop_assert!(
        expected.is_valid(),
        "reference emits ascending unique positions"
    );

    for &imp in impls {
        let got = run_scan(imp, &preds, OutputMode::Positions).unwrap();
        prop_assert_eq!(
            got.positions().unwrap(),
            &expected,
            "{} positions",
            imp.name()
        );
        let got = run_scan(imp, &preds, OutputMode::Count).unwrap();
        prop_assert_eq!(got.count(), expected.len() as u64, "{} count", imp.name());
    }

    // Morsel-parallel path over the best impl.
    let best = fts_core::best_fused_impl::<T>();
    let got = run_scan_parallel(best, &preds, OutputMode::Positions, 4, 257).unwrap();
    prop_assert_eq!(got.positions().unwrap(), &expected, "parallel positions");
    Ok(())
}

fn op_strategy() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(CmpOp::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn u32_chains(
        rows in 0usize..1200,
        p in 1usize..=4,
        domain in 1u32..40,
        ops in prop::collection::vec(op_strategy(), 4),
        needles in prop::collection::vec(0u32..40, 4),
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let cols: Vec<Vec<u32>> =
            (0..p).map(|_| (0..rows).map(|_| (rng() % domain as u64) as u32).collect()).collect();
        check_all(&impls_for_32bit(), &cols, &ops[..p], &needles[..p])?;
    }

    #[test]
    fn i32_chains_with_negatives(
        rows in 0usize..800,
        p in 1usize..=3,
        ops in prop::collection::vec(op_strategy(), 3),
        needles in prop::collection::vec(-20i32..20, 3),
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let cols: Vec<Vec<i32>> = (0..p)
            .map(|_| (0..rows).map(|_| (rng() % 41) as i32 - 20).collect())
            .collect();
        check_all(&impls_for_32bit(), &cols, &ops[..p], &needles[..p])?;
    }

    #[test]
    fn f32_chains_with_nan(
        rows in 0usize..600,
        ops in prop::collection::vec(op_strategy(), 2),
        needle0 in -5i32..5,
        nan_every in 2usize..50,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let cols: Vec<Vec<f32>> = (0..2)
            .map(|c| {
                (0..rows)
                    .map(|i| {
                        if c == 0 && i % nan_every == 0 { f32::NAN }
                        else { (rng() % 11) as f32 - 5.0 }
                    })
                    .collect()
            })
            .collect();
        check_all(
            &impls_for_32bit(),
            &cols,
            &ops[..2],
            &[needle0 as f32, 0.0],
        )?;
    }

    #[test]
    fn u64_and_f64_chains(
        rows in 0usize..600,
        ops in prop::collection::vec(op_strategy(), 2),
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Values straddling 2^32 exercise the full 64-bit compare path.
        let base = u32::MAX as u64 - 5;
        let cols: Vec<Vec<u64>> =
            (0..2).map(|_| (0..rows).map(|_| base + rng() % 11).collect()).collect();
        let mut impls = vec![
            ScanImpl::SisdBranching,
            ScanImpl::SisdAutoVec,
            ScanImpl::FusedScalar(RegWidth::W256),
        ];
        if ScanImpl::FusedAvx512(RegWidth::W512).available() {
            impls.push(ScanImpl::FusedAvx512(RegWidth::W512));
        }
        check_all(&impls, &cols, &ops[..2], &[base + 5, base + 3])?;

        let fcols: Vec<Vec<f64>> = cols
            .iter()
            .map(|c| c.iter().map(|&v| (v - base) as f64 * 0.5).collect())
            .collect();
        check_all(&impls, &fcols, &ops[..2], &[2.5f64, 1.5])?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bit-packed fused chains (static kernel and JIT) agree with the
    /// row-wise reference for random widths, needles and row counts.
    #[test]
    fn packed_chains_agree(
        rows in 0usize..900,
        bits0 in 1u8..=16,
        bits1 in 1u8..=32,
        op0 in prop::sample::select(CmpOp::ALL.to_vec()),
        op1 in prop::sample::select(CmpOp::ALL.to_vec()),
        seed in any::<u64>(),
    ) {
        use fts_core::fused::packed::{
            fused_scan_packed, packed_kernel_available, scan_packed_reference, PackedPred,
        };
        use fts_storage::{mask_of, PackedColumn};

        if !packed_kernel_available() {
            return Ok(());
        }
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u32
        };
        let v0: Vec<u32> = (0..rows).map(|_| rng() & mask_of(bits0)).collect();
        let v1: Vec<u32> = (0..rows).map(|_| rng() & mask_of(bits1)).collect();
        let c0 = PackedColumn::pack(&v0, bits0).unwrap();
        let c1 = PackedColumn::pack(&v1, bits1).unwrap();
        let n0 = mask_of(bits0) / 2;
        let n1 = mask_of(bits1) / 3;
        let preds = [
            PackedPred::Packed { col: &c0, op: op0, needle: n0 },
            PackedPred::Packed { col: &c1, op: op1, needle: n1 },
        ];
        let expected = scan_packed_reference(&preds);
        let got = fused_scan_packed(&preds, OutputMode::Positions).unwrap();
        prop_assert_eq!(got.positions().unwrap(), &expected, "static packed kernel");
        let got = fused_scan_packed(&preds, OutputMode::Count).unwrap();
        prop_assert_eq!(got.count(), expected.len() as u64);
    }
}

/// The generated position list is exactly the ascending set of matching
/// rows — checked against an independent bitmap-based oracle.
#[test]
fn position_list_is_sorted_unique_and_complete() {
    let rows = 10_000usize;
    let a: Vec<u32> = (0..rows as u32)
        .map(|i| i.wrapping_mul(2654435761) % 16)
        .collect();
    let b: Vec<u32> = (0..rows as u32)
        .map(|i| i.wrapping_mul(40503) % 16)
        .collect();
    let preds = [
        TypedPred::eq(&a[..], 3u32),
        TypedPred::new(&b[..], CmpOp::Ge, 8u32),
    ];
    let out = fts_core::run_fused_auto(&preds, OutputMode::Positions);
    let pl = out.positions().unwrap();
    assert!(pl.is_valid());
    let set: std::collections::HashSet<u32> = pl.into_iter().collect();
    for row in 0..rows as u32 {
        let should = a[row as usize] == 3 && b[row as usize] >= 8;
        assert_eq!(set.contains(&row), should, "row {row}");
    }
}
