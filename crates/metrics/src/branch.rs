//! Branch predictor models.
//!
//! The paper measures `PAPI_BR_MSP` (retired mispredicted branches) on a
//! Skylake-SP part. We substitute deterministic predictor models fed by the
//! *logical* branch stream of each scan implementation (see
//! [`crate::instrument`]): a branch *site* is one static conditional jump
//! (e.g. "does `a[i] == 5` match?"), an *event* is one dynamic execution
//! with its taken/not-taken outcome.
//!
//! Three classic predictors are provided. [`GShare`] is the default used by
//! the Fig. 1/6 reproductions: like real global-history predictors it nails
//! loop-control branches and adapts to biased data branches, but cannot
//! predict i.i.d. random outcomes — exactly the behaviour the paper's
//! measurements show (mispredictions peak where match probability is 50 %
//! and vanish at 0 % / 100 %).

/// Statistics accumulated by a predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Dynamic branch events observed.
    pub branches: u64,
    /// Events whose outcome differed from the prediction.
    pub mispredictions: u64,
}

impl BranchStats {
    /// Misprediction rate in `[0, 1]` (0 for an empty stream).
    pub fn miss_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }
}

/// A branch predictor consuming (site, outcome) events.
pub trait BranchPredictor {
    /// Record one dynamic branch; returns `true` if it was mispredicted.
    fn record(&mut self, site: u32, taken: bool) -> bool;

    /// Accumulated statistics.
    fn stats(&self) -> BranchStats;

    /// Forget all learned state and statistics.
    fn reset(&mut self);
}

/// Static always-taken prediction (the simplest possible baseline).
#[derive(Debug, Clone, Default)]
pub struct AlwaysTaken {
    stats: BranchStats,
}

impl BranchPredictor for AlwaysTaken {
    fn record(&mut self, _site: u32, taken: bool) -> bool {
        self.stats.branches += 1;
        let miss = !taken;
        self.stats.mispredictions += u64::from(miss);
        miss
    }

    fn stats(&self) -> BranchStats {
        self.stats
    }

    fn reset(&mut self) {
        self.stats = BranchStats::default();
    }
}

/// Saturating 2-bit counter helper (00/01 predict not-taken, 10/11 taken).
#[inline]
fn update_2bit(ctr: &mut u8, taken: bool) -> bool {
    let predict_taken = *ctr >= 2;
    let miss = predict_taken != taken;
    if taken {
        *ctr = (*ctr + 1).min(3);
    } else {
        *ctr = ctr.saturating_sub(1);
    }
    miss
}

/// Per-site 2-bit saturating counters (bimodal predictor).
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<u8>,
    stats: BranchStats,
}

impl Bimodal {
    /// Predictor with `sites` distinct branch sites (no aliasing).
    pub fn new(sites: usize) -> Bimodal {
        Bimodal {
            table: vec![1; sites.max(1)],
            stats: BranchStats::default(),
        }
    }
}

impl BranchPredictor for Bimodal {
    fn record(&mut self, site: u32, taken: bool) -> bool {
        let idx = site as usize % self.table.len();
        self.stats.branches += 1;
        let miss = update_2bit(&mut self.table[idx], taken);
        self.stats.mispredictions += u64::from(miss);
        miss
    }

    fn stats(&self) -> BranchStats {
        self.stats
    }

    fn reset(&mut self) {
        self.table.fill(1);
        self.stats = BranchStats::default();
    }
}

/// GShare: global branch history XORed with the site selects a 2-bit
/// counter. History lets it learn short repeating patterns, approximating
/// a modern predictor far better than bimodal alone.
#[derive(Debug, Clone)]
pub struct GShare {
    table: Vec<u8>,
    history: u32,
    history_bits: u32,
    stats: BranchStats,
}

impl GShare {
    /// Predictor with `2^index_bits` counters and `history_bits` of global
    /// history (history is truncated to `index_bits`).
    pub fn new(index_bits: u32, history_bits: u32) -> GShare {
        assert!((1..=24).contains(&index_bits));
        GShare {
            table: vec![1; 1 << index_bits],
            history: 0,
            history_bits: history_bits.min(index_bits),
            stats: BranchStats::default(),
        }
    }

    /// The configuration used by the figure harness: 4096 counters, 12 bits
    /// of history.
    pub fn default_config() -> GShare {
        GShare::new(12, 12)
    }
}

impl BranchPredictor for GShare {
    fn record(&mut self, site: u32, taken: bool) -> bool {
        let mask = (self.table.len() - 1) as u32;
        let idx = ((site.wrapping_mul(0x9E37_79B9)) ^ self.history) & mask;
        self.stats.branches += 1;
        let miss = update_2bit(&mut self.table[idx as usize], taken);
        self.stats.mispredictions += u64::from(miss);
        let hist_mask = (1u32 << self.history_bits) - 1;
        self.history = ((self.history << 1) | u32::from(taken)) & hist_mask;
        miss
    }

    fn stats(&self) -> BranchStats {
        self.stats
    }

    fn reset(&mut self) {
        self.table.fill(1);
        self.history = 0;
        self.stats = BranchStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn always_taken_counts() {
        let mut p = AlwaysTaken::default();
        assert!(!p.record(0, true));
        assert!(p.record(0, false));
        assert_eq!(
            p.stats(),
            BranchStats {
                branches: 2,
                mispredictions: 1
            }
        );
        p.reset();
        assert_eq!(p.stats().branches, 0);
    }

    #[test]
    fn bimodal_learns_bias() {
        let mut p = Bimodal::new(4);
        for _ in 0..1000 {
            p.record(1, true);
        }
        // After warm-up, a fully biased branch never mispredicts.
        assert!(p.stats().mispredictions <= 2);
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        // T,N,T,N… defeats bimodal but is trivial with history.
        let mut g = GShare::new(10, 8);
        let mut b = Bimodal::new(4);
        for i in 0..10_000u32 {
            let taken = i % 2 == 0;
            g.record(7, taken);
            b.record(7, taken);
        }
        assert!(
            g.stats().miss_rate() < 0.02,
            "gshare rate {}",
            g.stats().miss_rate()
        );
        assert!(
            b.stats().miss_rate() > 0.45,
            "bimodal rate {}",
            b.stats().miss_rate()
        );
    }

    #[test]
    fn random_branches_peak_at_half() {
        // Misprediction rate must be ~0 at p≈0, maximal at p=0.5 — the
        // shape driving paper Figs. 1 and 6.
        let mut rates = Vec::new();
        for p in [0.001, 0.1, 0.5, 0.9, 0.999] {
            let mut g = GShare::default_config();
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..200_000 {
                g.record(3, rng.random_bool(p));
            }
            rates.push(g.stats().miss_rate());
        }
        assert!(rates[0] < 0.01);
        assert!(
            rates[2] > rates[1] && rates[2] > rates[3],
            "peak at 0.5: {rates:?}"
        );
        assert!(rates[2] > 0.35);
        assert!(rates[4] < 0.01);
    }

    #[test]
    fn gshare_reset_forgets_history() {
        let mut g = GShare::new(8, 8);
        for i in 0..1000u32 {
            g.record(1, i % 2 == 0);
        }
        let trained_rate = g.stats().miss_rate();
        g.reset();
        assert_eq!(g.stats().branches, 0);
        // Right after reset the alternating pattern mispredicts again.
        let mut early_misses = 0;
        for i in 0..8u32 {
            if g.record(1, i % 2 == 0) {
                early_misses += 1;
            }
        }
        assert!(early_misses >= 1, "history must be forgotten");
        assert!(trained_rate < 0.05);
    }

    #[test]
    fn bimodal_sites_do_not_interfere_when_table_is_large_enough() {
        let mut p = Bimodal::new(64);
        for _ in 0..1000 {
            p.record(1, true);
            p.record(2, false);
        }
        // Both fully biased branches converge despite opposite outcomes.
        assert!(p.stats().miss_rate() < 0.01, "{}", p.stats().miss_rate());
    }

    #[test]
    fn miss_rate_empty_stream() {
        assert_eq!(BranchStats::default().miss_rate(), 0.0);
    }
}
