//! Instrumented scan interpreters.
//!
//! Each function mirrors one scan implementation from `fts-core` —
//! structurally identical control flow and memory access pattern — but
//! reports every data-dependent branch and every demand load to a
//! [`Probe`]. Feeding [`crate::probe::HwModel`] reproduces the counter
//! measurements of paper Figs. 1 and 6 deterministically.
//!
//! The instrumented scans return the match count, which the tests check
//! against the real kernels — if the control flow drifted from the real
//! implementation, the counts would too.

use fts_core::TypedPred;
use fts_simd::model;
use fts_storage::NativeType;

use crate::probe::{column_base, site, Probe};

/// Instrumented *SISD (no vec)* scan (paper §II): short-circuit branches,
/// conditional loads of later columns.
pub fn sisd_branching<T: NativeType>(preds: &[TypedPred<'_, T>], probe: &mut impl Probe) -> u64 {
    let Some(first) = preds.first() else { return 0 };
    let rows = first.data.len();
    let width = std::mem::size_of::<T>();
    let mut total = 0u64;
    for row in 0..rows {
        let mut all = true;
        for (level, p) in preds.iter().enumerate() {
            // The load happens before the compare; later columns are only
            // touched when every earlier predicate matched.
            probe.load(column_base(level) + (row * width) as u64, width);
            let hit = p.matches(row);
            probe.branch(site::pred_check(level), hit);
            if !hit {
                all = false;
                break;
            }
        }
        total += u64::from(all);
    }
    total
}

/// Instrumented *SISD (auto vec)* / branch-free scan: every column is
/// loaded for every row, the match bit is combined arithmetically — no
/// data-dependent branches at all.
pub fn sisd_branchfree<T: NativeType>(preds: &[TypedPred<'_, T>], probe: &mut impl Probe) -> u64 {
    let Some(first) = preds.first() else { return 0 };
    let rows = first.data.len();
    let width = std::mem::size_of::<T>();
    let mut total = 0u64;
    for row in 0..rows {
        let mut hit = true;
        for (level, p) in preds.iter().enumerate() {
            probe.load(column_base(level) + (row * width) as u64, width);
            hit &= p.matches(row);
        }
        total += u64::from(hit);
    }
    total
}

/// Instrumented block-at-a-time bitmask scan: per predicate one branch-free
/// full-column pass, plus bitmask writes/reads (modeled as loads of the
/// bitmask region, column index 63).
pub fn block_bitmap<T: NativeType>(preds: &[TypedPred<'_, T>], probe: &mut impl Probe) -> u64 {
    let Some(first) = preds.first() else { return 0 };
    let rows = first.data.len();
    let width = std::mem::size_of::<T>();
    let bitmap_base = column_base(63);
    let mut acc = vec![u64::MAX; rows.div_ceil(64)];
    for (level, p) in preds.iter().enumerate() {
        for row in 0..rows {
            probe.load(column_base(level) + (row * width) as u64, width);
            let bit = p.matches(row);
            if !bit {
                acc[row / 64] &= !(1u64 << (row % 64));
            }
            if row % 64 == 0 {
                // The materialized bitmask word travels through the cache
                // once per predicate pass — the cost fusion avoids.
                probe.load(bitmap_base + (level * rows.div_ceil(8) + row / 8) as u64, 8);
            }
        }
    }
    acc.iter().map(|w| w.count_ones() as u64).sum::<u64>() - (acc.len() as u64 * 64 - rows as u64)
}

/// One stage's register-resident position list.
#[derive(Clone, Copy)]
struct Stage<const N: usize> {
    plist: [u32; N],
    count: usize,
}

/// Instrumented Fused Table Scan with `N` lanes, mirroring
/// `fts_core::fused::scalar` (and therefore the hardware kernels) branch
/// for branch and load for load.
pub fn fused<T: NativeType, const N: usize>(
    preds: &[TypedPred<'_, T>],
    probe: &mut impl Probe,
) -> u64 {
    let Some(first) = preds.first() else { return 0 };
    let rows = first.data.len();
    let width = std::mem::size_of::<T>();
    let p = preds.len();
    let mut stages = vec![
        Stage::<N> {
            plist: [0; N],
            count: 0
        };
        p.saturating_sub(1)
    ];
    let mut total = 0u64;

    // Mutual recursion unrolled into an explicit worklist would obscure the
    // structure; recursion depth is ≤ p.
    fn flush<T: NativeType, const N: usize>(
        s: usize,
        preds: &[TypedPred<'_, T>],
        stages: &mut [Stage<N>],
        probe: &mut impl Probe,
        total: &mut u64,
    ) {
        let c = stages[s - 1].count;
        if c == 0 {
            return;
        }
        let plist = stages[s - 1].plist;
        stages[s - 1] = Stage {
            plist: [0; N],
            count: 0,
        };

        let width = std::mem::size_of::<T>();
        let pred = &preds[s];
        // Gather: one demand load per active lane (vpgatherdd issues one
        // line fill per distinct line; the cache model deduplicates).
        for &pos in &plist[..c] {
            probe.load(column_base(s) + (pos as usize * width) as u64, width);
        }
        let kmask = model::lane_mask(c);
        let vals = model::mask_gather([T::default(); N], kmask, plist, pred.data);
        let k2 = model::mask_cmp_mask(kmask, pred.op, vals, model::splat(pred.needle));
        let m2 = k2.count_ones() as usize;
        probe.branch(site::flush_any(s), m2 != 0);
        if m2 == 0 {
            return;
        }
        let fresh2 = model::compress([0u32; N], k2, plist);
        if s == preds.len() - 1 {
            *total += m2 as u64;
        } else {
            push(s + 1, fresh2, m2, preds, stages, probe, total);
        }
    }

    fn push<T: NativeType, const N: usize>(
        s: usize,
        fresh: [u32; N],
        m: usize,
        preds: &[TypedPred<'_, T>],
        stages: &mut [Stage<N>],
        probe: &mut impl Probe,
        total: &mut u64,
    ) {
        let overflow = stages[s - 1].count + m > N;
        probe.branch(site::list_overflow(s), overflow);
        if overflow {
            flush(s, preds, stages, probe, total);
            stages[s - 1].plist = fresh;
            stages[s - 1].count = m;
        } else {
            let st = &mut stages[s - 1];
            st.plist =
                model::permutex2var(st.plist, fts_core::fused::merge_index::<N>(st.count), fresh);
            st.count += m;
        }
        let full = stages[s - 1].count == N;
        probe.branch(site::list_full(s), full);
        if full {
            flush(s, preds, stages, probe, total);
        }
    }

    let needle = model::splat::<T, N>(first.needle);
    let mut base = 0usize;
    while base < rows {
        let tail = (rows - base).min(N);
        // One vector load covering the block.
        probe.load(column_base(0) + (base * width) as u64, tail * width);
        let block: [T; N] = std::array::from_fn(|i| {
            if i < tail {
                first.data[base + i]
            } else {
                T::default()
            }
        });
        let k = model::mask_cmp_mask(model::lane_mask(tail), first.op, block, needle);
        let m = k.count_ones() as usize;
        probe.branch(site::BLOCK_ANY_MATCH, m != 0);
        if m != 0 {
            let idx: [u32; N] = std::array::from_fn(|i| (base + i) as u32);
            let fresh = model::compress([0u32; N], k, idx);
            if p == 1 {
                total += m as u64;
            } else {
                push(1, fresh, m, preds, &mut stages, probe, &mut total);
            }
        }
        base += N;
    }
    for s in 1..p {
        flush(s, preds, &mut stages, probe, &mut total);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{HwModel, NullProbe};
    use fts_core::reference;
    use fts_storage::gen::{generate_chain, PredSpec};
    use fts_storage::CmpOp;

    fn preds_from<'a>(cols: &'a [Vec<u32>], needles: &[u32]) -> Vec<TypedPred<'a, u32>> {
        cols.iter()
            .zip(needles)
            .map(|(c, &n)| TypedPred::eq(&c[..], n))
            .collect()
    }

    #[test]
    fn instrumented_counts_match_reference() {
        let chain = generate_chain(
            20_000,
            &[
                PredSpec::eq(5u32, 0.2),
                PredSpec::eq(2u32, 0.5),
                PredSpec::eq(9u32, 0.3),
            ],
            31,
        )
        .unwrap();
        let preds = preds_from(&chain.columns, &[5, 2, 9]);
        let expected = reference::scan_count(&preds);
        let mut p = NullProbe;
        assert_eq!(sisd_branching(&preds, &mut p), expected);
        assert_eq!(sisd_branchfree(&preds, &mut p), expected);
        assert_eq!(block_bitmap(&preds, &mut p), expected);
        assert_eq!(fused::<u32, 4>(&preds, &mut p), expected);
        assert_eq!(fused::<u32, 8>(&preds, &mut p), expected);
        assert_eq!(fused::<u32, 16>(&preds, &mut p), expected);
    }

    #[test]
    fn instrumented_ops_respect_semantics() {
        let a: Vec<u32> = (0..5000).map(|i| i % 10).collect();
        let b: Vec<u32> = (0..5000).map(|i| i % 4).collect();
        for op in CmpOp::ALL {
            let preds = [
                TypedPred::new(&a[..], op, 5u32),
                TypedPred::new(&b[..], CmpOp::Ne, 1u32),
            ];
            let expected = reference::scan_count(&preds);
            let mut p = NullProbe;
            assert_eq!(fused::<u32, 16>(&preds, &mut p), expected, "{op}");
            assert_eq!(sisd_branching(&preds, &mut p), expected, "{op}");
        }
    }

    /// The headline claim of Fig. 6: the fused scan mispredicts roughly an
    /// order of magnitude less than the branching SISD scan at medium
    /// selectivity.
    #[test]
    fn fused_mispredicts_an_order_of_magnitude_less() {
        let chain = generate_chain(
            200_000,
            &[PredSpec::eq(5u32, 0.5), PredSpec::eq(2u32, 0.5)],
            7,
        )
        .unwrap();
        let preds = preds_from(&chain.columns, &[5, 2]);

        let mut sisd_model = HwModel::skylake();
        sisd_branching(&preds, &mut sisd_model);
        let sisd = sisd_model.finish();

        let mut fused_model = HwModel::skylake();
        fused::<u32, 16>(&preds, &mut fused_model);
        let f = fused_model.finish();

        assert!(
            sisd.branch.mispredictions > 10 * f.branch.mispredictions.max(1),
            "sisd={} fused={}",
            sisd.branch.mispredictions,
            f.branch.mispredictions
        );
    }

    /// Fig. 1's shape: branch mispredictions of the SISD scan peak at 50 %
    /// selectivity and collapse at the extremes.
    #[test]
    fn sisd_mispredictions_peak_at_half() {
        let mut m = Vec::new();
        // Both predicates share the selectivity, like the Fig. 1 x-axis
        // ("percent of qualifying rows per predicate").
        for sel in [0.001, 0.5, 0.999] {
            let chain = generate_chain(
                100_000,
                &[PredSpec::eq(5u32, sel), PredSpec::eq(2u32, sel)],
                11,
            )
            .unwrap();
            let preds = preds_from(&chain.columns, &[5, 2]);
            let mut model = HwModel::skylake();
            sisd_branching(&preds, &mut model);
            m.push(model.finish().branch.mispredictions);
        }
        assert!(m[1] > 5 * m[0], "{m:?}");
        assert!(m[1] > 5 * m[2], "{m:?}");
    }

    /// Fig. 1's other counter: useless hardware prefetches on the *second*
    /// column are highest at medium selectivity (the prefetcher keeps
    /// streaming data the scan then skips) and lowest when everything or
    /// nothing qualifies.
    #[test]
    fn useless_prefetches_peak_at_medium_selectivity() {
        let mut u = Vec::new();
        for sel in [0.0005, 0.05, 1.0] {
            let chain = generate_chain(
                200_000,
                &[PredSpec::eq(5u32, sel), PredSpec::eq(2u32, sel)],
                13,
            )
            .unwrap();
            let preds = preds_from(&chain.columns, &[5, 2]);
            let mut model = HwModel::skylake();
            sisd_branching(&preds, &mut model);
            u.push(model.finish().mem.useless_prefetches);
        }
        assert!(u[1] > u[0], "{u:?}");
        assert!(u[1] > u[2], "{u:?}");
    }

    #[test]
    fn fused_loads_fewer_second_column_lines_at_low_selectivity() {
        let chain = generate_chain(
            100_000,
            &[PredSpec::eq(5u32, 0.01), PredSpec::eq(2u32, 0.5)],
            3,
        )
        .unwrap();
        let preds = preds_from(&chain.columns, &[5, 2]);

        let mut bf = HwModel::skylake();
        sisd_branchfree(&preds, &mut bf);
        let bf = bf.finish();
        let mut fu = HwModel::skylake();
        fused::<u32, 16>(&preds, &mut fu);
        let fu = fu.finish();

        // Branch-free touches both columns fully; fused only gathers 1 % of
        // column 2's lines.
        assert!(
            fu.mem.bus_lines() < bf.mem.bus_lines(),
            "fused={fu:?} bf={bf:?}"
        );
    }
}
