//! Layout-advisor telemetry counters.
//!
//! The background layout advisor (fts-server) walks the catalog, scores
//! every column against the cost model in `fts-storage::advisor`, and
//! re-encodes chunks whose stored layout lost. These counters are how an
//! operator sees that happen without tracing: how many chunk-columns were
//! scored, how many were actually rewritten, how many rewrites the
//! admission controller deferred, and what the rewrites bought in bytes.
//! Per-layout decode throughput is tracked as cumulative (bytes, nanos)
//! pairs so `STATS` can report an honest lifetime GB/s per layout rather
//! than a last-sample gauge.
//!
//! Same contract as [`crate::sched::SchedCounters`]: relaxed atomics,
//! monotone counts, no cross-counter consistency — a snapshot taken while
//! a re-encode is mid-flight may see it scored but not yet committed.

use std::sync::atomic::{AtomicU64, Ordering};

use fts_storage::Layout;

/// Number of distinct layouts tracked per-layout (indexes parallel
/// [`Layout::ALL`]).
pub const NUM_LAYOUTS: usize = Layout::ALL.len();

fn layout_index(layout: Layout) -> usize {
    Layout::ALL
        .iter()
        .position(|&l| l == layout)
        .expect("Layout::ALL covers every variant")
}

/// Monotonic counters describing the background layout advisor. One
/// instance lives for the whole server; the advisor thread updates it
/// lock-free and `STATS` / `EXPLAIN ANALYZE` read it.
#[derive(Debug, Default)]
pub struct AdvisorCounters {
    /// Advisor passes over the whole catalog.
    pub passes: AtomicU64,
    /// Chunk-columns scored against the layout cost model.
    pub chunks_scored: AtomicU64,
    /// Chunk-columns re-encoded and swapped in.
    pub chunks_reencoded: AtomicU64,
    /// Re-encodes skipped because the admission budget had no room.
    pub reencodes_deferred: AtomicU64,
    /// Segment bytes before every committed re-encode, summed.
    pub bytes_before: AtomicU64,
    /// Segment bytes after every committed re-encode, summed.
    pub bytes_after: AtomicU64,
    /// Cumulative decoded bytes per layout (parallel to [`Layout::ALL`]).
    decode_bytes: [AtomicU64; NUM_LAYOUTS],
    /// Cumulative decode nanoseconds per layout.
    decode_nanos: [AtomicU64; NUM_LAYOUTS],
}

/// A point-in-time copy of [`AdvisorCounters`], for display and JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdvisorSnapshot {
    /// Advisor passes over the whole catalog.
    pub passes: u64,
    /// Chunk-columns scored.
    pub chunks_scored: u64,
    /// Chunk-columns re-encoded.
    pub chunks_reencoded: u64,
    /// Re-encodes deferred by admission control.
    pub reencodes_deferred: u64,
    /// Bytes before committed re-encodes.
    pub bytes_before: u64,
    /// Bytes after committed re-encodes.
    pub bytes_after: u64,
    /// Cumulative decoded bytes per layout (parallel to [`Layout::ALL`]).
    pub decode_bytes: [u64; NUM_LAYOUTS],
    /// Cumulative decode nanoseconds per layout.
    pub decode_nanos: [u64; NUM_LAYOUTS],
}

impl AdvisorSnapshot {
    /// Net bytes the committed re-encodes saved (0 if they grew — the
    /// advisor can legitimately trade bytes for decode speed).
    pub fn bytes_saved(&self) -> u64 {
        self.bytes_before.saturating_sub(self.bytes_after)
    }

    /// Lifetime decode throughput for one layout in GB/s, or `None` if
    /// that layout has never been timed.
    pub fn decode_gbps(&self, layout: Layout) -> Option<f64> {
        let i = layout_index(layout);
        let nanos = self.decode_nanos[i];
        if nanos == 0 {
            None
        } else {
            Some(self.decode_bytes[i] as f64 / nanos as f64)
        }
    }
}

impl AdvisorCounters {
    /// Fresh zeroed counters.
    pub fn new() -> AdvisorCounters {
        AdvisorCounters::default()
    }

    /// Record one full catalog pass.
    pub fn record_pass(&self) {
        self.passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one chunk-column scored.
    pub fn record_scored(&self) {
        self.chunks_scored.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one committed re-encode with its before/after footprint.
    pub fn record_reencoded(&self, bytes_before: u64, bytes_after: u64) {
        self.chunks_reencoded.fetch_add(1, Ordering::Relaxed);
        self.bytes_before.fetch_add(bytes_before, Ordering::Relaxed);
        self.bytes_after.fetch_add(bytes_after, Ordering::Relaxed);
    }

    /// Record a re-encode the admission budget had no room for.
    pub fn record_deferred(&self) {
        self.reencodes_deferred.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a timed decode of `bytes` logical bytes from `layout`
    /// taking `nanos` nanoseconds.
    pub fn record_decode(&self, layout: Layout, bytes: u64, nanos: u64) {
        let i = layout_index(layout);
        self.decode_bytes[i].fetch_add(bytes, Ordering::Relaxed);
        self.decode_nanos[i].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Copy the current values.
    pub fn snapshot(&self) -> AdvisorSnapshot {
        let mut decode_bytes = [0u64; NUM_LAYOUTS];
        let mut decode_nanos = [0u64; NUM_LAYOUTS];
        for i in 0..NUM_LAYOUTS {
            decode_bytes[i] = self.decode_bytes[i].load(Ordering::Relaxed);
            decode_nanos[i] = self.decode_nanos[i].load(Ordering::Relaxed);
        }
        AdvisorSnapshot {
            passes: self.passes.load(Ordering::Relaxed),
            chunks_scored: self.chunks_scored.load(Ordering::Relaxed),
            chunks_reencoded: self.chunks_reencoded.load(Ordering::Relaxed),
            reencodes_deferred: self.reencodes_deferred.load(Ordering::Relaxed),
            bytes_before: self.bytes_before.load(Ordering::Relaxed),
            bytes_after: self.bytes_after.load(Ordering::Relaxed),
            decode_bytes,
            decode_nanos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let c = AdvisorCounters::new();
        c.record_pass();
        c.record_scored();
        c.record_scored();
        c.record_reencoded(4096, 1024);
        c.record_deferred();
        let s = c.snapshot();
        assert_eq!(s.passes, 1);
        assert_eq!(s.chunks_scored, 2);
        assert_eq!(s.chunks_reencoded, 1);
        assert_eq!(s.reencodes_deferred, 1);
        assert_eq!(s.bytes_saved(), 3072);
    }

    #[test]
    fn bytes_saved_saturates_when_reencode_grows() {
        let c = AdvisorCounters::new();
        c.record_reencoded(100, 500);
        assert_eq!(c.snapshot().bytes_saved(), 0);
    }

    #[test]
    fn decode_gbps_per_layout() {
        let c = AdvisorCounters::new();
        // 2 bytes per nano = 2 GB/s.
        c.record_decode(Layout::For, 2_000, 1_000);
        c.record_decode(Layout::For, 4_000, 2_000);
        let s = c.snapshot();
        let gbps = s.decode_gbps(Layout::For).unwrap();
        assert!((gbps - 2.0).abs() < 1e-9, "{gbps}");
        assert_eq!(s.decode_gbps(Layout::Plain), None, "never timed");
    }

    #[test]
    fn concurrent_updates_sum_exactly() {
        let c = std::sync::Arc::new(AdvisorCounters::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        c.record_scored();
                        c.record_decode(Layout::Packed, 10, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.chunks_scored, 800);
        assert!((s.decode_gbps(Layout::Packed).unwrap() - 10.0).abs() < 1e-9);
    }
}
