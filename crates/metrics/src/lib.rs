//! # fts-metrics — microarchitectural counter models and timing
//!
//! The paper quantifies *why* the Fused Table Scan wins with two PAPI
//! counters: branch mispredictions (`PAPI_BR_MSP`) and useless hardware
//! prefetches (`l2_lines_out.useless_hwpf`). This crate substitutes
//! deterministic models (see DESIGN.md §2):
//!
//! * [`branch`] — always-taken / bimodal / gshare predictors;
//! * [`cache`] — Skylake-shaped L1/L2 LRU caches plus a streaming
//!   prefetcher that tags prefetched lines and counts useless ones;
//! * [`probe`] — the event interface and the combined [`probe::HwModel`];
//! * [`instrument`] — instrumented twins of every scan implementation that
//!   report branches and loads while computing the same result;
//! * [`timing`] — median-of-N wall-clock measurement (the paper's §IV
//!   protocol) and bandwidth/throughput derivations for Fig. 2.
//! * [`sched`] — admission-control and shared-pass counters for the
//!   concurrent server (admitted/queued/rejected, batching hit rate).
//! * [`advisor`] — layout-advisor counters (chunks scored/re-encoded,
//!   bytes saved, per-layout decode throughput).

#![warn(missing_docs)]

pub mod advisor;
pub mod branch;
pub mod cache;
pub mod instrument;
pub mod probe;
pub mod sched;
pub mod timing;

pub use advisor::{AdvisorCounters, AdvisorSnapshot};
pub use branch::{AlwaysTaken, Bimodal, BranchPredictor, BranchStats, GShare};
pub use cache::{CacheSim, MemStats, PrefetcherConfig, StreamPrefetcher};
pub use probe::{column_base, HwCounters, HwModel, NullProbe, Probe};
pub use sched::{SchedCounters, SchedSnapshot};
pub use timing::{bytes_per_second, measure, values_per_microsecond, Measurements};
