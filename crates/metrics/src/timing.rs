//! Wall-clock measurement helpers used by the figure harness.
//!
//! The paper reports the **median** of ≥ 100 runs per configuration
//! (§IV); these helpers implement that protocol plus the derived
//! bandwidth/throughput metrics of Fig. 2.

use std::time::{Duration, Instant};

/// A set of repeated measurements of one configuration.
#[derive(Debug, Clone, Default)]
pub struct Measurements {
    times: Vec<Duration>,
}

impl Measurements {
    /// Record a single duration.
    pub fn push(&mut self, d: Duration) {
        self.times.push(d);
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether no run was recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Median runtime (the paper's reported statistic). Panics when empty.
    pub fn median(&self) -> Duration {
        assert!(!self.times.is_empty(), "no measurements");
        let mut t = self.times.clone();
        t.sort_unstable();
        let n = t.len();
        if n % 2 == 1 {
            t[n / 2]
        } else {
            (t[n / 2 - 1] + t[n / 2]) / 2
        }
    }

    /// Minimum runtime.
    pub fn min(&self) -> Duration {
        *self.times.iter().min().expect("no measurements")
    }

    /// Median in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median().as_secs_f64() * 1e3
    }
}

/// Run `f` once as warm-up, then `reps` timed repetitions. The closure's
/// result is returned through `std::hint::black_box` so the compiler cannot
/// elide the work.
pub fn measure<R>(reps: usize, mut f: impl FnMut() -> R) -> Measurements {
    assert!(reps >= 1);
    std::hint::black_box(f());
    let mut m = Measurements::default();
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        m.push(t.elapsed());
    }
    m
}

/// Bytes per second given a payload size and a duration.
pub fn bytes_per_second(bytes: u64, d: Duration) -> f64 {
    bytes as f64 / d.as_secs_f64()
}

/// Values per microsecond (Fig. 2's lower panel).
pub fn values_per_microsecond(values: u64, d: Duration) -> f64 {
    values as f64 / (d.as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        let mut m = Measurements::default();
        for ms in [5u64, 1, 3] {
            m.push(Duration::from_millis(ms));
        }
        assert_eq!(m.median(), Duration::from_millis(3));
        m.push(Duration::from_millis(7));
        assert_eq!(m.median(), Duration::from_millis(4)); // (3+5)/2
        assert_eq!(m.min(), Duration::from_millis(1));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn measure_runs_the_closure() {
        let mut calls = 0u32;
        let m = measure(5, || {
            calls += 1;
            calls
        });
        assert_eq!(m.len(), 5);
        assert_eq!(calls, 6); // warm-up + 5
    }

    #[test]
    fn derived_metrics() {
        let d = Duration::from_secs(2);
        assert_eq!(bytes_per_second(4_000_000_000, d), 2e9);
        assert_eq!(values_per_microsecond(2_000_000, d), 1.0);
    }

    #[test]
    #[should_panic(expected = "no measurements")]
    fn median_of_empty_panics() {
        Measurements::default().median();
    }
}
