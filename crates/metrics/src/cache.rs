//! Cache hierarchy and hardware-prefetcher simulation.
//!
//! The paper's second counter, `l2_lines_out.useless_hwpf`, counts cache
//! lines the *hardware prefetcher* brought into L2 that were evicted without
//! ever being used. We substitute a deterministic model:
//!
//! * [`CacheSim`] — a set-associative, LRU, inclusive two-level cache with
//!   the Xeon Platinum 8180's shapes (L1d 32 KiB/8-way, L2 1 MiB/16-way);
//! * [`StreamPrefetcher`] — Intel's "streamer": it watches demand accesses
//!   per 4-KiB page, and once it sees a run of ascending line accesses it
//!   prefetches a window of upcoming lines into L2, tagging them. A tagged
//!   line that gets evicted before a demand hit increments
//!   `useless_prefetches` — the Fig. 1 counter.
//!
//! Addresses are synthetic: instrumented scans place each column in its own
//! 4-GiB region (see [`crate::instrument`]), which is all the model needs.

/// A physical line address (byte address >> 6).
pub type Line = u64;

/// Counters the memory model accumulates (Fig. 1's middle panels).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand accesses that hit L1d.
    pub l1_hits: u64,
    /// Demand accesses that hit L2 (including prefetched lines).
    pub l2_hits: u64,
    /// Demand accesses served from memory.
    pub memory_loads: u64,
    /// Lines the prefetcher moved into L2.
    pub prefetches_issued: u64,
    /// Prefetched lines evicted from L2 without a single demand hit —
    /// the `l2_lines_out.useless_hwpf` equivalent.
    pub useless_prefetches: u64,
}

impl MemStats {
    /// Total lines transferred over the memory bus (demand + prefetch).
    pub fn bus_lines(&self) -> u64 {
        self.memory_loads + self.prefetches_issued
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    line: Line,
    /// LRU stamp (bigger = more recent).
    stamp: u64,
    /// Line was installed by the prefetcher and not yet demanded.
    prefetched: bool,
}

#[derive(Debug, Clone)]
struct Level {
    sets: Vec<Vec<Way>>,
    ways: usize,
    set_mask: u64,
    tick: u64,
}

/// What happened to an evicted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Evicted {
    None,
    Demanded,
    UnusedPrefetch,
}

impl Level {
    fn new(size_bytes: usize, ways: usize) -> Level {
        let sets = size_bytes / 64 / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Level {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            set_mask: (sets - 1) as u64,
            tick: 0,
        }
    }

    fn set_of(&self, line: Line) -> usize {
        (line & self.set_mask) as usize
    }

    /// Demand lookup; marks the line used and refreshes LRU.
    fn lookup(&mut self, line: Line) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.line == line) {
            w.stamp = tick;
            w.prefetched = false;
            return true;
        }
        false
    }

    /// Install a line; returns eviction info.
    fn install(&mut self, line: Line, prefetched: bool) -> Evicted {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(w) = ways.iter_mut().find(|w| w.line == line) {
            w.stamp = tick;
            // A demand install clears the prefetch tag; a prefetch install
            // never re-tags a demanded line.
            w.prefetched &= prefetched;
            return Evicted::None;
        }
        let evicted = if ways.len() == self.ways {
            let (victim_idx, _) = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .expect("non-empty set");
            let victim = ways.swap_remove(victim_idx);
            if victim.prefetched {
                Evicted::UnusedPrefetch
            } else {
                Evicted::Demanded
            }
        } else {
            Evicted::None
        };
        ways.push(Way {
            line,
            stamp: tick,
            prefetched,
        });
        evicted
    }

    fn contains(&self, line: Line) -> bool {
        self.sets[self.set_of(line)].iter().any(|w| w.line == line)
    }
}

/// Streamer configuration.
#[derive(Debug, Clone, Copy)]
pub struct PrefetcherConfig {
    /// Ascending line accesses within a page before streaming starts.
    pub trigger_run: u32,
    /// Lines prefetched ahead of the demand stream once triggered.
    pub distance: u64,
    /// Disable the prefetcher entirely.
    pub enabled: bool,
}

impl Default for PrefetcherConfig {
    fn default() -> Self {
        PrefetcherConfig {
            trigger_run: 2,
            distance: 8,
            enabled: true,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PageState {
    last_line: Line,
    run: u32,
    next_prefetch: Line,
}

/// Per-4-KiB-page sequential stream detector (Intel "streamer" shape).
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    config: PrefetcherConfig,
    // Tiny direct-mapped table of recently seen pages, like the hardware.
    pages: Vec<(u64, PageState)>,
}

const PAGE_TABLE: usize = 64;
const LINES_PER_PAGE: u64 = 64; // 4 KiB / 64 B

impl StreamPrefetcher {
    /// New prefetcher with the given configuration.
    pub fn new(config: PrefetcherConfig) -> StreamPrefetcher {
        StreamPrefetcher {
            config,
            pages: vec![(u64::MAX, PageState::default()); PAGE_TABLE],
        }
    }

    /// Observe a demand access; returns the lines to prefetch.
    fn observe(&mut self, line: Line, out: &mut Vec<Line>) {
        if !self.config.enabled {
            return;
        }
        let page = line / LINES_PER_PAGE;
        // Hashed indexing: columns live in far-apart address regions whose
        // page numbers would otherwise alias in a small direct-mapped table.
        let slot = (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize % PAGE_TABLE;
        let (tag, st) = &mut self.pages[slot];
        if *tag != page {
            *tag = page;
            *st = PageState {
                last_line: line,
                run: 1,
                next_prefetch: line + 1,
            };
            return;
        }
        if line == st.last_line {
            return; // same line again: no stride information
        }
        if line == st.last_line + 1 {
            st.run += 1;
        } else {
            st.run = 1;
            st.next_prefetch = line + 1;
        }
        st.last_line = line;
        if st.run >= self.config.trigger_run {
            let until = line + self.config.distance;
            while st.next_prefetch <= until {
                // Prefetches stay within the page, like the hardware.
                if st.next_prefetch / LINES_PER_PAGE != page {
                    break;
                }
                out.push(st.next_prefetch);
                st.next_prefetch += 1;
            }
        }
    }
}

/// Two-level cache + streamer. Sized like the paper's Xeon Platinum 8180
/// (per-core L1d/L2; the shared L3 is omitted — the experiments stream
/// data far larger than L3 anyway, and the paper flushes caches between
/// runs).
#[derive(Debug, Clone)]
pub struct CacheSim {
    l1: Level,
    l2: Level,
    prefetcher: StreamPrefetcher,
    stats: MemStats,
    scratch: Vec<Line>,
}

impl CacheSim {
    /// Xeon Platinum 8180 shapes: L1d 32 KiB / 8-way, L2 1 MiB / 16-way.
    pub fn skylake(config: PrefetcherConfig) -> CacheSim {
        CacheSim::new(32 * 1024, 8, 1024 * 1024, 16, config)
    }

    /// Fully parameterized constructor.
    pub fn new(
        l1_bytes: usize,
        l1_ways: usize,
        l2_bytes: usize,
        l2_ways: usize,
        config: PrefetcherConfig,
    ) -> CacheSim {
        CacheSim {
            l1: Level::new(l1_bytes, l1_ways),
            l2: Level::new(l2_bytes, l2_ways),
            prefetcher: StreamPrefetcher::new(config),
            stats: MemStats::default(),
            scratch: Vec::with_capacity(16),
        }
    }

    /// One demand load of `bytes` at byte address `addr` (split into lines).
    pub fn load(&mut self, addr: u64, bytes: usize) {
        let first = addr / 64;
        let last = (addr + bytes.max(1) as u64 - 1) / 64;
        for line in first..=last {
            self.load_line(line);
        }
    }

    fn load_line(&mut self, line: Line) {
        if self.l1.lookup(line) {
            self.stats.l1_hits += 1;
            return;
        }
        // L1 miss: the streamer trains on L1-miss demand traffic.
        self.scratch.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        self.prefetcher.observe(line, &mut scratch);

        if self.l2.lookup(line) {
            self.stats.l2_hits += 1;
        } else {
            self.stats.memory_loads += 1;
            let evicted = self.l2.install(line, false);
            self.count_eviction(evicted);
        }
        self.l1.install(line, false);

        for pf in scratch.drain(..) {
            if !self.l2.contains(pf) {
                self.stats.prefetches_issued += 1;
                let evicted = self.l2.install(pf, true);
                self.count_eviction(evicted);
            }
        }
        self.scratch = scratch;
    }

    fn count_eviction(&mut self, e: Evicted) {
        if e == Evicted::UnusedPrefetch {
            self.stats.useless_prefetches += 1;
        }
    }

    /// Count every still-resident unused prefetch as useless and return the
    /// final statistics. Call once at end of a run (the paper flushes caches
    /// after each benchmark, which writes these lines out the same way).
    pub fn finish(mut self) -> MemStats {
        for set in &self.l2.sets {
            for w in set {
                if w.prefetched {
                    self.stats.useless_prefetches += 1;
                }
            }
        }
        self.stats
    }

    /// Statistics so far (without the final flush accounting).
    pub fn stats(&self) -> MemStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_prefetch() -> PrefetcherConfig {
        PrefetcherConfig {
            enabled: false,
            ..Default::default()
        }
    }

    #[test]
    fn l1_hit_after_first_touch() {
        let mut c = CacheSim::skylake(no_prefetch());
        c.load(0, 4);
        c.load(4, 4); // same line
        let s = c.stats();
        assert_eq!(s.memory_loads, 1);
        assert_eq!(s.l1_hits, 1);
    }

    #[test]
    fn lru_eviction_in_a_set() {
        // Direct-mapped tiny cache: 2 lines, 1 way → second distinct line
        // in the same set evicts the first.
        let mut c = CacheSim::new(128, 1, 4096, 16, no_prefetch());
        c.load(0, 4);
        c.load(128, 4); // same L1 set (2 sets × 64B)
        c.load(0, 4); // L1 miss again, but L2 hit
        let s = c.stats();
        assert_eq!(s.memory_loads, 2);
        assert_eq!(s.l2_hits, 1);
    }

    #[test]
    fn sequential_stream_triggers_prefetch() {
        let mut c = CacheSim::skylake(PrefetcherConfig::default());
        for i in 0..32u64 {
            c.load(i * 64, 4);
        }
        let s = c.stats();
        assert!(
            s.prefetches_issued > 0,
            "streamer must trigger on a sequential scan"
        );
        // Sequential use makes prefetches useful: demand hits in L2.
        assert!(s.l2_hits > 0);
    }

    #[test]
    fn sequential_scan_prefetches_are_useful() {
        let mut c = CacheSim::skylake(PrefetcherConfig::default());
        for i in 0..1000u64 {
            c.load(i * 64, 64);
        }
        let s = c.finish();
        // Only the lookahead tail (≤ distance per page) can be useless.
        assert!(
            s.useless_prefetches <= 16 * 8,
            "sequential: useless={} issued={}",
            s.useless_prefetches,
            s.prefetches_issued
        );
    }

    #[test]
    fn abandoned_stream_leaves_useless_prefetches() {
        let mut c = CacheSim::skylake(PrefetcherConfig::default());
        // Touch a short ascending run then jump away, repeatedly on fresh
        // pages: the streamed lines are never demanded.
        for page in 0..200u64 {
            let base = page * 64 * 64; // fresh 4 KiB page each time
            for i in 0..4u64 {
                c.load(base + i * 64, 4);
            }
        }
        let s = c.finish();
        assert!(
            s.useless_prefetches > 100,
            "abandoned streams: useless={} issued={}",
            s.useless_prefetches,
            s.prefetches_issued
        );
    }

    #[test]
    fn multi_line_load_touches_every_line() {
        let mut c = CacheSim::skylake(no_prefetch());
        c.load(60, 8); // straddles two lines
        assert_eq!(c.stats().memory_loads, 2);
    }

    #[test]
    fn bus_lines_accounting() {
        let s = MemStats {
            memory_loads: 10,
            prefetches_issued: 5,
            ..Default::default()
        };
        assert_eq!(s.bus_lines(), 15);
    }
}
