//! Scheduler / admission telemetry counters.
//!
//! The server refactor turns the engine from "run one scan" into
//! "schedule many scans"; these counters are how an operator sees that
//! scheduling happen: how many queries were admitted straight away,
//! how many had to queue, how many were shed with
//! `EngineError::Overloaded`, and how often the shared-pass batcher
//! managed to serve several compatible queries from one table sweep.
//!
//! Everything is relaxed atomics: the counters are monotonically
//! increasing event counts (plus one high-water gauge) read only for
//! reporting, so no cross-counter consistency is promised — a snapshot
//! taken mid-flight may see an admission whose completion is not yet
//! counted.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing admission-control and shared-pass
/// batching behaviour. One instance lives for the whole server; every
/// field is updated lock-free from connection threads.
#[derive(Debug, Default)]
pub struct SchedCounters {
    /// Queries admitted without waiting (fast path).
    pub admitted: AtomicU64,
    /// Queries that waited in the admission queue before running.
    pub queued: AtomicU64,
    /// Queries rejected with `Overloaded` (queue full or oversized).
    pub rejected: AtomicU64,
    /// Queries that ran to completion (success).
    pub completed: AtomicU64,
    /// Queries that ran but returned an error (parse, plan, execute).
    pub errors: AtomicU64,
    /// Shared passes executed (each served ≥ 1 query in one table sweep).
    pub shared_batches: AtomicU64,
    /// Queries whose result came out of a shared pass that served more
    /// than one query — the batcher's "hit" count.
    pub shared_queries: AtomicU64,
    /// High-water mark of concurrently running queries.
    pub peak_running: AtomicU64,
}

/// A point-in-time copy of [`SchedCounters`], for display and JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedSnapshot {
    /// Queries admitted without waiting.
    pub admitted: u64,
    /// Queries that waited in the admission queue.
    pub queued: u64,
    /// Queries rejected with `Overloaded`.
    pub rejected: u64,
    /// Queries completed successfully.
    pub completed: u64,
    /// Queries that failed after admission.
    pub errors: u64,
    /// Shared passes executed.
    pub shared_batches: u64,
    /// Queries served by a multi-query shared pass.
    pub shared_queries: u64,
    /// High-water mark of concurrently running queries.
    pub peak_running: u64,
}

impl SchedSnapshot {
    /// Fraction of *finished* queries that were served by a shared pass
    /// together with at least one other query, in `[0, 1]`. Returns 0.0
    /// when nothing has finished yet.
    pub fn shared_hit_rate(&self) -> f64 {
        let done = self.completed + self.errors;
        if done == 0 {
            0.0
        } else {
            self.shared_queries as f64 / done as f64
        }
    }
}

impl SchedCounters {
    /// Fresh zeroed counters.
    pub fn new() -> SchedCounters {
        SchedCounters::default()
    }

    /// Record an admission; `waited` says whether it queued first.
    pub fn record_admitted(&self, waited: bool) {
        if waited {
            self.queued.fetch_add(1, Ordering::Relaxed);
        } else {
            self.admitted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a load-shed rejection.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a finished query; `ok` distinguishes success from error.
    pub fn record_finished(&self, ok: bool) {
        if ok {
            self.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one shared pass that served `queries` queries. Only passes
    /// serving more than one query count toward `shared_queries`.
    pub fn record_shared_pass(&self, queries: u64) {
        self.shared_batches.fetch_add(1, Ordering::Relaxed);
        if queries > 1 {
            self.shared_queries.fetch_add(queries, Ordering::Relaxed);
        }
    }

    /// Raise the running-queries high-water mark to at least `running`.
    pub fn observe_running(&self, running: u64) {
        self.peak_running.fetch_max(running, Ordering::Relaxed);
    }

    /// Copy the current values.
    pub fn snapshot(&self) -> SchedSnapshot {
        SchedSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shared_batches: self.shared_batches.load(Ordering::Relaxed),
            shared_queries: self.shared_queries.load(Ordering::Relaxed),
            peak_running: self.peak_running.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_and_snapshots() {
        let c = SchedCounters::new();
        c.record_admitted(false);
        c.record_admitted(true);
        c.record_rejected();
        c.record_finished(true);
        c.record_finished(false);
        c.record_shared_pass(3);
        c.record_shared_pass(1);
        c.observe_running(2);
        c.observe_running(1);
        let s = c.snapshot();
        assert_eq!(s.admitted, 1);
        assert_eq!(s.queued, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.errors, 1);
        assert_eq!(s.shared_batches, 2);
        assert_eq!(s.shared_queries, 3, "single-query passes are not hits");
        assert_eq!(s.peak_running, 2, "gauge keeps the high-water mark");
    }

    #[test]
    fn hit_rate_bounds() {
        let c = SchedCounters::new();
        assert_eq!(c.snapshot().shared_hit_rate(), 0.0);
        for _ in 0..4 {
            c.record_finished(true);
        }
        c.record_shared_pass(2);
        let r = c.snapshot().shared_hit_rate();
        assert!((r - 0.5).abs() < 1e-9, "2 of 4 via shared pass: {r}");
    }

    #[test]
    fn concurrent_updates_sum_exactly() {
        let c = Arc::new(SchedCounters::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        c.record_admitted(false);
                        c.record_finished(true);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.admitted, 800);
        assert_eq!(s.completed, 800);
    }
}
