//! Execution probes: the glue between instrumented scans and the
//! microarchitectural models.
//!
//! An instrumented scan ([`crate::instrument`]) reports two event kinds:
//! dynamic *branches* (site + outcome) and demand *loads* (synthetic byte
//! address + width). A [`Probe`] consumes them; [`HwModel`] feeds them to a
//! branch predictor and the cache/prefetcher simulator, yielding the
//! counter pair of paper Fig. 1.

use crate::branch::{BranchPredictor, BranchStats, GShare};
use crate::cache::{CacheSim, MemStats, PrefetcherConfig};

/// Branch-site identifiers used by the instrumented scans.
pub mod site {
    /// Data branch of predicate `level` in a tuple-at-a-time scan
    /// (`if col[level][row] OP needle`).
    pub const fn pred_check(level: usize) -> u32 {
        level as u32
    }

    /// Fused driver: "did any lane of this block match?" (`k == 0` skip).
    pub const BLOCK_ANY_MATCH: u32 = 16;

    /// Fused stage `s`: "does the incoming batch overflow the list?".
    pub const fn list_overflow(stage: usize) -> u32 {
        24 + stage as u32
    }

    /// Fused stage `s`: "is the list exactly full now?".
    pub const fn list_full(stage: usize) -> u32 {
        32 + stage as u32
    }

    /// Fused stage `s`: "did any gathered lane survive the compare?".
    pub const fn flush_any(stage: usize) -> u32 {
        40 + stage as u32
    }
}

/// Synthetic base byte address of column `col`: each column gets its own
/// 4-GiB region so streams never alias.
pub fn column_base(col: usize) -> u64 {
    ((col as u64) + 1) << 32
}

/// Consumer of execution events.
pub trait Probe {
    /// One dynamic branch at `site` with the given outcome.
    fn branch(&mut self, site: u32, taken: bool);

    /// One demand load of `bytes` at synthetic byte address `addr`.
    fn load(&mut self, addr: u64, bytes: usize);
}

/// Discards all events (lets the instrumented scans run un-modeled).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {
    #[inline]
    fn branch(&mut self, _site: u32, _taken: bool) {}
    #[inline]
    fn load(&mut self, _addr: u64, _bytes: usize) {}
}

/// Combined counter model: branch predictor + cache/prefetcher simulator.
pub struct HwModel<P = GShare> {
    /// The branch predictor consuming branch events.
    pub predictor: P,
    /// The cache + prefetcher simulator consuming load events.
    pub cache: CacheSim,
}

/// Result of one modeled run (the Fig. 1 / Fig. 6 counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwCounters {
    /// Branch predictor statistics.
    pub branch: BranchStats,
    /// Memory hierarchy statistics.
    pub mem: MemStats,
}

impl HwModel<GShare> {
    /// Default model: GShare(12,12) + Skylake-shaped caches with streamer.
    pub fn skylake() -> Self {
        HwModel {
            predictor: GShare::default_config(),
            cache: CacheSim::skylake(PrefetcherConfig::default()),
        }
    }
}

impl<P: BranchPredictor> HwModel<P> {
    /// Custom predictor + cache.
    pub fn new(predictor: P, cache: CacheSim) -> Self {
        HwModel { predictor, cache }
    }

    /// Finish the run: account still-resident unused prefetches and return
    /// the counters.
    pub fn finish(self) -> HwCounters {
        HwCounters {
            branch: self.predictor.stats(),
            mem: self.cache.finish(),
        }
    }
}

impl<P: BranchPredictor> Probe for HwModel<P> {
    #[inline]
    fn branch(&mut self, site: u32, taken: bool) {
        self.predictor.record(site, taken);
    }

    #[inline]
    fn load(&mut self, addr: u64, bytes: usize) {
        self.cache.load(addr, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_bases_do_not_alias() {
        assert_ne!(column_base(0), column_base(1));
        assert!(column_base(0) >= 1 << 32);
        // 4 GiB apart: a 2^31-row u32 column never crosses into the next.
        assert_eq!(column_base(1) - column_base(0), 1 << 32);
    }

    #[test]
    fn sites_are_distinct() {
        let mut all = vec![site::BLOCK_ANY_MATCH];
        for l in 0..8 {
            all.push(site::pred_check(l));
            all.push(site::list_overflow(l));
            all.push(site::list_full(l));
            all.push(site::flush_any(l));
        }
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "branch sites must be unique");
    }

    #[test]
    fn hw_model_accumulates() {
        let mut m = HwModel::skylake();
        m.branch(0, true);
        m.branch(0, false);
        m.load(column_base(0), 4);
        m.load(column_base(0), 4);
        let c = m.finish();
        assert_eq!(c.branch.branches, 2);
        assert_eq!(c.mem.memory_loads, 1);
        assert_eq!(c.mem.l1_hits, 1);
    }
}
